// Package config holds the simulated machine parameters.
//
// The defaults reproduce Figure 1 of the paper ("Simulation parameters and
// Workloads"): an 11-stage out-of-order SMT core with 64-entry issue
// queues, 320 shared physical registers, a per-thread 256-entry ROB, a
// perceptron branch predictor, banked L1 caches and a shared 4-banked L2
// connected through a bus.
package config

import "fmt"

// Core describes one SMT core.
type Core struct {
	// ThreadsPerCore is the SMT degree (hardware contexts per core).
	ThreadsPerCore int
	// FetchWidth is the maximum instructions fetched per cycle
	// (shared across the threads selected by the IFetch policy).
	FetchWidth int
	// FetchThreads is the maximum number of threads fetched from per
	// cycle (the "2" in an ICOUNT.2.8 front end).
	FetchThreads int
	// DecodeWidth, RenameWidth, CommitWidth bound the respective stages.
	DecodeWidth, RenameWidth, CommitWidth int
	// FrontEndStages is the fetch-to-rename depth in cycles. The paper's
	// pipeline is 11 stages deep overall.
	FrontEndStages int
	// IntQueue, FPQueue, LSQueue are the shared issue-queue capacities.
	IntQueue, FPQueue, LSQueue int
	// IntUnits, FPUnits, LSUnits are the execution unit counts.
	IntUnits, FPUnits, LSUnits int
	// PhysRegs is the shared physical register file size; rename blocks
	// when it is exhausted. Architectural state is carved out of this
	// pool at reset (NumArchRegs per thread).
	PhysRegs int
	// ROBPerThread is the per-thread reorder-buffer capacity (the paper
	// marks the ROB as replicated per thread).
	ROBPerThread int
	// RASEntries is the per-thread return-address-stack depth.
	RASEntries int
	// BTBEntries and BTBAssoc shape the branch target buffer.
	BTBEntries, BTBAssoc int
	// PerceptronCount and PerceptronHistory shape the branch predictor
	// ("perceptron (4K local, 256 perceps.)").
	PerceptronCount, PerceptronHistory int
	// MSHREntries is the per-core miss status holding register count.
	MSHREntries int
	// RegReservePerThread is the number of rename registers guaranteed
	// to each hardware context: a thread may never hold more than
	// (pool - reserve*(threads-1)) registers, so a stalled thread can
	// hog most — but not all — of the shared pool. Real SMT cores
	// reserve per-thread resources the same way.
	RegReservePerThread int
}

// CacheGeom describes one cache level's geometry.
type CacheGeom struct {
	// SizeBytes is total capacity.
	SizeBytes int
	// LineBytes is the block size.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// Banks is the number of independently addressed banks.
	Banks int
	// Latency is the access (hit) latency of one bank in cycles; banks
	// are single-ported, so a bank is busy for Latency cycles per access.
	Latency int
}

// Memory describes the shared memory system.
type Memory struct {
	// L1I and L1D are the per-core first-level caches.
	L1I, L1D CacheGeom
	// L1MissLatency is the minimum load-issue-to-data latency of an
	// access that misses L1 and hits an idle L2 bank (the paper's
	// "L1 lat./miss 3/22 cycs." and the MIN of the MFLUSH environment).
	L1MissLatency int
	// L2 is the shared second-level cache.
	L2 CacheGeom
	// BusDelay is the one-way L1<->L2 bus transfer latency in cycles,
	// excluding arbitration queueing.
	BusDelay int
	// L2FillOccupancy is how long a line fill holds an L2 bank's port.
	// Fills go through buffered write ports, so they hold the bank for
	// less time than a demand tag-check+read (L2.Latency).
	L2FillOccupancy int
	// MainMemoryLatency is the L2-miss service latency.
	MainMemoryLatency int
	// TLBEntries is the fully-associative D-TLB size; TLBMissLatency is
	// the page-walk penalty.
	TLBEntries, TLBMissLatency int
	// PageBytes is the virtual memory page size used by the TLB.
	PageBytes int
}

// Config is the complete machine description for one simulation.
type Config struct {
	// Cores is the number of replicated SMT cores sharing the L2.
	Cores int
	// Core holds the per-core parameters.
	Core Core
	// Mem holds the memory system parameters.
	Mem Memory
	// L1Latency is the L1 data/instruction hit latency.
	L1Latency int
	// Seed feeds all random streams in the simulation.
	Seed uint64
}

// Default returns the paper's Figure 1 machine with the given number of
// cores.
func Default(cores int) Config {
	return Config{
		Cores: cores,
		Core: Core{
			ThreadsPerCore:      2,
			FetchWidth:          8,
			FetchThreads:        2,
			DecodeWidth:         8,
			RenameWidth:         8,
			CommitWidth:         8,
			FrontEndStages:      7, // fetch..queue-insert portion of the 11-stage pipe
			IntQueue:            64,
			FPQueue:             64,
			LSQueue:             64,
			IntUnits:            4,
			FPUnits:             3,
			LSUnits:             2,
			PhysRegs:            320,
			ROBPerThread:        256,
			RASEntries:          100,
			BTBEntries:          256,
			BTBAssoc:            4,
			PerceptronCount:     256,
			PerceptronHistory:   16,
			MSHREntries:         16,
			RegReservePerThread: 24,
		},
		Mem: Memory{
			L1I:           CacheGeom{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, Banks: 8, Latency: 3},
			L1D:           CacheGeom{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, Banks: 8, Latency: 3},
			L1MissLatency: 22,
			// Nominally 4MB; 12-way with 64B lines over 4 banks does not
			// divide 4MB exactly, so this is the closest realizable size
			// (1365 sets per bank, 4,193,280 bytes, 0.02% below 4MB).
			L2:                CacheGeom{SizeBytes: 1365 * 12 * 64 * 4, LineBytes: 64, Assoc: 12, Banks: 4, Latency: 15},
			BusDelay:          2,
			L2FillOccupancy:   4,
			MainMemoryLatency: 250,
			TLBEntries:        512,
			TLBMissLatency:    300,
			PageBytes:         8 << 10,
		},
		L1Latency: 3,
		Seed:      0x5EED,
	}
}

// MTDelay returns the paper's Multicore Traffic delay:
//
//	MT = (L1_L2_Bus_delay + L2_Bank_Acc_delay) * (Num_Cores - 1)
//
// It is zero for a single core.
func (c *Config) MTDelay() int {
	return (c.Mem.BusDelay + c.Mem.L2.Latency) * (c.Cores - 1)
}

// MinL2Latency returns MIN of the MFLUSH operational environment: the
// latency of an uncontended L2 hit as seen from load issue.
func (c *Config) MinL2Latency() int { return c.Mem.L1MissLatency }

// MaxL2Latency returns MAX of the MFLUSH operational environment: the
// latency of an L2 miss served by main memory.
func (c *Config) MaxL2Latency() int {
	return c.Mem.L1MissLatency + c.Mem.MainMemoryLatency
}

// TotalThreads is the number of hardware contexts on the chip.
func (c *Config) TotalThreads() int { return c.Cores * c.Core.ThreadsPerCore }

// Validate reports the first structural problem with the configuration, or
// nil if it is usable.
func (c *Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("config: need at least 1 core, have %d", c.Cores)
	case c.Core.ThreadsPerCore < 1:
		return fmt.Errorf("config: need at least 1 thread per core, have %d", c.Core.ThreadsPerCore)
	case c.Core.FetchWidth < 1 || c.Core.FetchThreads < 1:
		return fmt.Errorf("config: fetch width/threads must be positive")
	case c.Core.IntQueue < 1 || c.Core.FPQueue < 1 || c.Core.LSQueue < 1:
		return fmt.Errorf("config: issue queues must be non-empty")
	case c.Core.IntUnits < 1 || c.Core.LSUnits < 1:
		return fmt.Errorf("config: need at least one int and one ld/st unit")
	case c.Core.ROBPerThread < 1:
		return fmt.Errorf("config: ROB must be non-empty")
	case c.Core.MSHREntries < 1:
		return fmt.Errorf("config: need at least one MSHR")
	}
	// Rename must be able to hold architectural state for every thread
	// and still have at least one spare register to make progress.
	archNeed := c.Core.ThreadsPerCore * 64 // isa.NumArchRegs; kept literal to avoid the import cycle
	if c.Core.PhysRegs <= archNeed {
		return fmt.Errorf("config: %d physical registers cannot back %d architectural ones",
			c.Core.PhysRegs, archNeed)
	}
	for _, g := range []struct {
		name string
		g    CacheGeom
	}{{"L1I", c.Mem.L1I}, {"L1D", c.Mem.L1D}, {"L2", c.Mem.L2}} {
		if err := g.g.validate(); err != nil {
			return fmt.Errorf("config: %s: %w", g.name, err)
		}
	}
	if c.Mem.PageBytes < c.Mem.L1D.LineBytes {
		return fmt.Errorf("config: page smaller than a cache line")
	}
	if c.Mem.L1MissLatency <= c.L1Latency {
		return fmt.Errorf("config: L1 miss latency must exceed L1 hit latency")
	}
	return nil
}

func (g CacheGeom) validate() error {
	switch {
	case g.SizeBytes <= 0 || g.LineBytes <= 0 || g.Assoc <= 0 || g.Banks <= 0:
		return fmt.Errorf("non-positive geometry %+v", g)
	case g.LineBytes&(g.LineBytes-1) != 0:
		return fmt.Errorf("line size %d not a power of two", g.LineBytes)
	case g.Banks&(g.Banks-1) != 0:
		return fmt.Errorf("bank count %d not a power of two", g.Banks)
	case g.SizeBytes%(g.LineBytes*g.Assoc*g.Banks) != 0:
		return fmt.Errorf("size %d not divisible into %d-way banked sets", g.SizeBytes, g.Assoc)
	case g.Latency < 1:
		return fmt.Errorf("latency must be at least 1 cycle")
	}
	return nil
}

// Sets returns the number of sets per bank.
func (g CacheGeom) Sets() int { return g.SizeBytes / (g.LineBytes * g.Assoc * g.Banks) }
