package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	for cores := 1; cores <= 4; cores++ {
		c := Default(cores)
		if err := c.Validate(); err != nil {
			t.Errorf("Default(%d) invalid: %v", cores, err)
		}
	}
}

func TestDefaultMatchesPaperFigure1(t *testing.T) {
	c := Default(4)
	if c.Core.IntQueue != 64 || c.Core.FPQueue != 64 || c.Core.LSQueue != 64 {
		t.Errorf("queue sizes %d/%d/%d, want 64/64/64",
			c.Core.IntQueue, c.Core.FPQueue, c.Core.LSQueue)
	}
	if c.Core.IntUnits != 4 || c.Core.FPUnits != 3 || c.Core.LSUnits != 2 {
		t.Errorf("unit counts %d/%d/%d, want 4/3/2",
			c.Core.IntUnits, c.Core.FPUnits, c.Core.LSUnits)
	}
	if c.Core.PhysRegs != 320 {
		t.Errorf("phys regs %d, want 320", c.Core.PhysRegs)
	}
	if c.Core.ROBPerThread != 256 {
		t.Errorf("ROB %d, want 256", c.Core.ROBPerThread)
	}
	if c.Core.RASEntries != 100 {
		t.Errorf("RAS %d, want 100", c.Core.RASEntries)
	}
	if c.Core.BTBEntries != 256 || c.Core.BTBAssoc != 4 {
		t.Errorf("BTB %d/%d-way, want 256/4-way", c.Core.BTBEntries, c.Core.BTBAssoc)
	}
	if c.Mem.L1I.SizeBytes != 64<<10 || c.Mem.L1I.Assoc != 4 || c.Mem.L1I.Banks != 8 {
		t.Errorf("L1I geometry %+v mismatches paper", c.Mem.L1I)
	}
	if c.Mem.L1D.SizeBytes != 32<<10 || c.Mem.L1D.Assoc != 4 || c.Mem.L1D.Banks != 8 {
		t.Errorf("L1D geometry %+v mismatches paper", c.Mem.L1D)
	}
	if c.Mem.L2.Assoc != 12 || c.Mem.L2.Banks != 4 || c.Mem.L2.Latency != 15 {
		t.Errorf("L2 geometry %+v mismatches paper", c.Mem.L2)
	}
	// Nominal 4MB, realizable to within 0.1%.
	if d := (4 << 20) - c.Mem.L2.SizeBytes; d < 0 || d > 4<<20/1000 {
		t.Errorf("L2 size %d too far from nominal 4MB", c.Mem.L2.SizeBytes)
	}
	if c.L1Latency != 3 || c.Mem.L1MissLatency != 22 {
		t.Errorf("L1 lat/miss %d/%d, want 3/22", c.L1Latency, c.Mem.L1MissLatency)
	}
	if c.Mem.MainMemoryLatency != 250 {
		t.Errorf("memory latency %d, want 250", c.Mem.MainMemoryLatency)
	}
	if c.Mem.TLBEntries != 512 || c.Mem.TLBMissLatency != 300 {
		t.Errorf("TLB %d/%d, want 512/300", c.Mem.TLBEntries, c.Mem.TLBMissLatency)
	}
}

func TestMTDelay(t *testing.T) {
	c := Default(1)
	if got := c.MTDelay(); got != 0 {
		t.Errorf("single core MT = %d, want 0", got)
	}
	c = Default(4)
	want := (c.Mem.BusDelay + c.Mem.L2.Latency) * 3
	if got := c.MTDelay(); got != want {
		t.Errorf("4-core MT = %d, want %d", got, want)
	}
}

func TestMinMaxL2Latency(t *testing.T) {
	c := Default(2)
	if c.MinL2Latency() != 22 {
		t.Errorf("MIN = %d, want 22", c.MinL2Latency())
	}
	if c.MaxL2Latency() != 22+250 {
		t.Errorf("MAX = %d, want 272", c.MaxL2Latency())
	}
	if c.MaxL2Latency() <= c.MinL2Latency() {
		t.Error("MAX must exceed MIN")
	}
}

func TestTotalThreads(t *testing.T) {
	c := Default(3)
	if got := c.TotalThreads(); got != 6 {
		t.Errorf("TotalThreads = %d, want 6", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"zero threads", func(c *Config) { c.Core.ThreadsPerCore = 0 }},
		{"zero fetch width", func(c *Config) { c.Core.FetchWidth = 0 }},
		{"empty int queue", func(c *Config) { c.Core.IntQueue = 0 }},
		{"no ls units", func(c *Config) { c.Core.LSUnits = 0 }},
		{"empty rob", func(c *Config) { c.Core.ROBPerThread = 0 }},
		{"no mshr", func(c *Config) { c.Core.MSHREntries = 0 }},
		{"too few regs", func(c *Config) { c.Core.PhysRegs = 128 }},
		{"odd line size", func(c *Config) { c.Mem.L2.LineBytes = 48 }},
		{"odd banks", func(c *Config) { c.Mem.L2.Banks = 3 }},
		{"zero latency", func(c *Config) { c.Mem.L2.Latency = 0 }},
		{"size not divisible", func(c *Config) { c.Mem.L2.SizeBytes = 4<<20 + 64 }},
		{"tiny page", func(c *Config) { c.Mem.PageBytes = 32 }},
		{"miss faster than hit", func(c *Config) { c.Mem.L1MissLatency = 2 }},
	}
	for _, m := range mutations {
		c := Default(2)
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", m.name)
		}
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{SizeBytes: 4 << 20, LineBytes: 64, Assoc: 12, Banks: 4}
	// 4MB / (64B * 12 ways * 4 banks) = 1365.33 -> must divide evenly in
	// the default config, so check the exact default arithmetic instead.
	def := Default(1).Mem.L2
	sets := def.Sets()
	if sets*def.LineBytes*def.Assoc*def.Banks != def.SizeBytes {
		t.Errorf("sets %d does not reconstruct size %d", sets, def.SizeBytes)
	}
	_ = g
}
