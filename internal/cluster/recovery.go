package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/campaign"
)

// walState is the queue state a WAL replay reconstructs: which jobs are
// live (enqueued, unacknowledged) in what order, which of them the dead
// incarnation had leased out, and which results were durably
// acknowledged but possibly never confirmed in the result store. Every
// apply is idempotent — the same record can arrive twice when a crash
// between a compaction's snapshot rename and its tail truncation leaves
// a stale tail behind the fresh snapshot.
type walState struct {
	order  []string                    // enqueue order of live job keys (may hold settled stragglers; liveOrder filters)
	jobs   map[string]campaign.WireJob // live jobs by key
	leases map[string]string           // live key -> worker ID holding its lease
	acked  map[string]campaign.Record  // durably acknowledged results by key
}

func newWALState() *walState {
	return &walState{
		jobs:   make(map[string]campaign.WireJob),
		leases: make(map[string]string),
		acked:  make(map[string]campaign.Record),
	}
}

// apply folds one log record into the state. A malformed record — an
// enqueue with no job, an ack with no result, an op replay has never
// heard of — returns an error that fails the whole replay: the WAL is
// written by one process with no concurrent mutation, so a record that
// does not parse cleanly means corruption, and guessing around it could
// silently re-run or drop jobs.
func (s *walState) apply(r walRecord) error {
	switch r.Op {
	case opEnqueue:
		if r.Job == nil || r.Job.Key == "" {
			return errors.New("enqueue record without a job")
		}
		key := r.Job.Key
		if _, live := s.jobs[key]; live {
			return nil // replayed from a stale tail
		}
		if _, done := s.acked[key]; done {
			return nil // settled after the snapshot absorbed this enqueue
		}
		s.jobs[key] = *r.Job
		s.order = append(s.order, key)
	case opLease:
		if r.Key == "" || r.Worker == "" {
			return errors.New("lease record without key and worker")
		}
		if _, live := s.jobs[r.Key]; live {
			s.leases[r.Key] = r.Worker
		}
	case opRequeue:
		if r.Key == "" {
			return errors.New("requeue record without a key")
		}
		delete(s.leases, r.Key)
	case opAck:
		if r.Rec == nil || r.Rec.Key == "" {
			return errors.New("ack record without a result")
		}
		s.settle(r.Rec.Key)
		s.acked[r.Rec.Key] = *r.Rec
	case opFail, opDequeue:
		if r.Key == "" {
			return fmt.Errorf("%s record without a key", r.Op)
		}
		s.settle(r.Key)
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	return nil
}

// settle removes a job from the live set (its slot in order becomes a
// straggler liveOrder skips).
func (s *walState) settle(key string) {
	delete(s.jobs, key)
	delete(s.leases, key)
}

// liveOrder returns the keys of live jobs in their original enqueue
// order.
func (s *walState) liveOrder() []string {
	keys := make([]string, 0, len(s.jobs))
	seen := make(map[string]bool, len(s.jobs))
	for _, key := range s.order {
		if _, live := s.jobs[key]; live && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	return keys
}

// Recovery describes what a durable coordinator (OpenCoordinator with a
// StateDir) restored from its write-ahead log at boot. The daemon uses
// it to resume an interrupted campaign: re-dispatch Jobs, and append
// Orphans to the result store if they are missing there.
type Recovery struct {
	// Jobs are the enqueued-but-unacknowledged jobs, re-queued for
	// dispatch in their original order.
	Jobs []campaign.WireJob
	// Forfeited maps recovered job keys to the worker IDs that held
	// their leases when the previous incarnation died. Those IDs belong
	// to dead registrations — a restarted daemon issues fresh epochs —
	// so the leases are forfeited and the jobs are plain pending again.
	Forfeited map[string]string
	// Orphans are results the dead incarnation acknowledged durably (the
	// worker saw HTTP 200) but may never have written to the result
	// store. Replaying them into the store is idempotent: records are
	// keyed by content hash and byte-identical across runs.
	Orphans []campaign.Record
}

// recoveryFromState converts a replayed walState into the exported
// Recovery view, with deterministic ordering.
func recoveryFromState(st *walState) Recovery {
	r := Recovery{Forfeited: make(map[string]string, len(st.leases))}
	for _, key := range st.liveOrder() {
		r.Jobs = append(r.Jobs, st.jobs[key])
	}
	for key, worker := range st.leases {
		r.Forfeited[key] = worker
	}
	for _, rec := range st.acked {
		r.Orphans = append(r.Orphans, rec)
	}
	sort.Slice(r.Orphans, func(i, j int) bool { return r.Orphans[i].Key < r.Orphans[j].Key })
	return r
}
