package cluster

import (
	"context"
	"errors"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// Router decides where a cache miss simulates: on the worker fleet when
// live workers are registered, in-process otherwise. It is the job-level
// runner the daemon's cluster mode plugs into campaign.NewJobCache, so
// routing happens per job, behind the admission queue and the cache's
// single-flight — a campaign transparently mixes remote and local
// execution as workers come and go, and a fleet that dies mid-job
// strands nothing: the dispatch fails with ErrNoWorkers and the job
// falls back to the local simulator.
type Router struct {
	coord *Coordinator
	local func(sim.Options) (*sim.Result, error)
	slots chan struct{} // bounds local simulations only

	// OnSample, when non-nil, receives live interval sample points from
	// jobs the router simulates locally (keyed by Job.Key) — the
	// daemon's sample SSE feed. Set it before the first Run. Jobs
	// dispatched to remote workers return their samples only in the
	// completed record; the worker protocol does not stream them.
	OnSample func(key string, p sim.SamplePoint)
}

// NewRouter builds a router over coord (nil: always local) running
// local fallback simulations with runner (nil: sim.Run) on at most
// workers goroutines (<= 0: GOMAXPROCS). The local bound exists because
// the daemon's cluster-mode scheduler pool is sized for the admission
// queue, not the core count — remote dispatches are cheap waits, local
// simulations are not.
func NewRouter(coord *Coordinator, workers int, runner func(sim.Options) (*sim.Result, error)) *Router {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runner == nil {
		runner = sim.Run
	}
	return &Router{coord: coord, local: runner, slots: make(chan struct{}, workers)}
}

// Run executes one job and returns its record: via the fleet when live
// workers exist, locally otherwise. Determinism makes the two paths
// byte-interchangeable. Cancelling ctx aborts a job still waiting for a
// slot or unleased in the fleet queue; a job already simulating — here
// or on a worker — finishes.
func (r *Router) Run(ctx context.Context, j campaign.Job) (campaign.Record, error) {
	if r.coord != nil {
		rec, err := r.coord.Dispatch(ctx, j)
		switch {
		case err == nil:
			return rec, nil
		case errors.Is(err, ErrNoWorkers), errors.Is(err, ErrClosed):
			// No fleet (left): simulate here.
		default:
			return campaign.Record{}, err
		}
	}
	select {
	case r.slots <- struct{}{}:
	case <-ctx.Done():
		return campaign.Record{}, ctx.Err()
	}
	defer func() { <-r.slots }()
	o, err := j.SimOptions()
	if err != nil {
		return campaign.Record{}, err
	}
	j.StreamSamples(&o, r.OnSample)
	res, err := r.local(o)
	if err != nil {
		return campaign.Record{}, err
	}
	return campaign.NewRecord(j, res), nil
}
