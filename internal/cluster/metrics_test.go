package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/simtest"
)

// scrapeValues renders r and returns every sample keyed by its rendered
// identity (name plus sorted labels) — a convenience for asserting on a
// conformance-checked exposition.
func scrapeValues(t *testing.T, r *metrics.Registry) map[string]float64 {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("coordinator exposition does not conform: %v\n%s", err, buf.String())
	}
	out := map[string]float64{}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			key := s.Name
			for _, l := range []string{"worker", "name", "le"} {
				if v, ok := s.Labels[l]; ok {
					key += "|" + l + "=" + v
				}
			}
			out[key] = s.Value
		}
	}
	return out
}

// TestCoordinatorMetrics drives a register → lease → complete cycle and
// a TTL expiry through an instrumented durable coordinator, asserting
// the fleet gauges, lease counters, per-worker liveness series and WAL
// histograms all move — and that the exposition stays conformant
// throughout.
func TestCoordinatorMetrics(t *testing.T) {
	c, err := OpenCoordinator(Config{LeaseTTL: 80 * time.Millisecond, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)

	w, err := c.Register("m1", 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := scrapeValues(t, reg)
	if vals["mflush_fleet_workers"] != 1 {
		t.Fatalf("fleet workers = %v, want 1", vals["mflush_fleet_workers"])
	}

	j := testJobs(t, 7)[0]
	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), j)
		done <- err
	}()
	batch, err := c.Lease(w.ID, 1, time.Second, Liveness{LastJobKey: "prior", JobsDone: 3, CyclesPerSec: 123456})
	if err != nil || len(batch) != 1 {
		t.Fatalf("lease = %v, %v", batch, err)
	}
	vals = scrapeValues(t, reg)
	if vals["mflush_leases_issued_total"] != 1 {
		t.Fatalf("leases issued = %v, want 1", vals["mflush_leases_issued_total"])
	}
	if vals["mflush_fleet_lease_age_seconds"] <= 0 {
		t.Fatalf("lease age = %v, want > 0 while leased", vals["mflush_fleet_lease_age_seconds"])
	}
	wkey := "|worker=" + w.ID + "|name=m1"
	if vals["mflush_fleet_worker_jobs_done"+wkey] != 3 {
		t.Fatalf("per-worker jobs done = %v, want the heartbeat-reported 3", vals["mflush_fleet_worker_jobs_done"+wkey])
	}
	if vals["mflush_fleet_worker_cycles_per_sec"+wkey] != 123456 {
		t.Fatalf("per-worker cycles/s = %v, want 123456", vals["mflush_fleet_worker_cycles_per_sec"+wkey])
	}
	if vals["mflush_fleet_worker_leased"+wkey] != 1 {
		t.Fatalf("per-worker leased = %v, want 1", vals["mflush_fleet_worker_leased"+wkey])
	}
	// The liveness detail also lands in the fleet snapshot.
	if ws := c.Workers(); len(ws) != 1 || ws[0].LastJobKey != "prior" || ws[0].JobsDone != 3 || ws[0].CyclesPerSec != 123456 {
		t.Fatalf("fleet snapshot missing liveness detail: %+v", ws)
	}

	if _, _, err := c.Complete(w.ID, []campaign.Record{testRecord(t, j)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	vals = scrapeValues(t, reg)
	if vals["mflush_fleet_worker_completed"+wkey] != 1 {
		t.Fatalf("per-worker completed = %v, want 1", vals["mflush_fleet_worker_completed"+wkey])
	}
	// Durable transitions hit the WAL: append and fsync histograms must
	// have observed them.
	if vals["mflush_wal_append_seconds_count"] == 0 || vals["mflush_wal_fsync_seconds_count"] == 0 {
		t.Fatalf("WAL histograms did not move: append=%v fsync=%v",
			vals["mflush_wal_append_seconds_count"], vals["mflush_wal_fsync_seconds_count"])
	}

	// Let the worker's TTL expire: the fleet empties and its per-worker
	// series leave the exposition.
	simtest.WaitFor(t, 2*time.Second, func() bool { return c.LiveWorkers() == 0 },
		"worker never expired")
	vals = scrapeValues(t, reg)
	if vals["mflush_fleet_workers"] != 0 {
		t.Fatalf("fleet workers = %v after expiry, want 0", vals["mflush_fleet_workers"])
	}
	if _, ok := vals["mflush_fleet_worker_leased"+wkey]; ok {
		t.Fatal("expired worker's series still exposed")
	}
}

// TestLeaseExpiryCounters pins the expired-vs-forfeited split: a TTL
// reap counts as expired, a clean deregister as forfeited.
func TestLeaseExpiryCounters(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)

	jobs := testJobs(t, 11)
	w1, _ := c.Register("leaver", 1)
	go func() { c.Dispatch(context.Background(), jobs[0]) }()
	simtest.WaitFor(t, 2*time.Second, func() bool {
		batch, err := c.Lease(w1.ID, 1, 100*time.Millisecond, Liveness{})
		if err != nil {
			t.Fatal(err)
		}
		return len(batch) == 1
	}, "never leased the dispatched job")
	if err := c.Deregister(w1.ID); err != nil {
		t.Fatal(err)
	}
	vals := scrapeValues(t, reg)
	if vals["mflush_leases_forfeited_total"] != 1 || vals["mflush_leases_expired_total"] != 0 {
		t.Fatalf("forfeited/expired = %v/%v, want 1/0 after a clean deregister",
			vals["mflush_leases_forfeited_total"], vals["mflush_leases_expired_total"])
	}
}
