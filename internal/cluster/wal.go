package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
)

// The coordinator's write-ahead log. A durable coordinator
// (OpenCoordinator with Config.StateDir) appends one JSONL record per
// queue transition — job enqueued, lease granted, lease re-issued,
// result acknowledged, job withdrawn — fsyncing before the transition
// takes effect, so every state change a caller or worker has observed
// survives a crash. The log lives in two files under the state
// directory:
//
//	queue.snap   the last compaction: the whole queue state as a flat
//	             record list, written to a temp file and renamed into
//	             place, so it is always complete.
//	queue.wal    the tail: every transition since that compaction,
//	             appended with the same single-Write-per-line torn-tail
//	             discipline as campaign.Store (campaign.RecoverJSONL
//	             repairs a kill mid-append by dropping the one
//	             unterminated fragment).
//
// Replay (boot) applies the snapshot, then the repaired tail, with
// idempotent semantics — re-applying a transition to a state that
// already reflects it is a no-op — because a crash between the
// compaction's snapshot rename and its tail truncation legitimately
// leaves a tail whose records the snapshot already absorbed. Compaction
// runs under the coordinator lock every CompactEvery tail records, so
// the log's size is bounded by the live queue plus one tail window.

// WAL record operations (the "op" field).
const (
	opEnqueue = "enqueue" // a job entered the queue (carries the wire job)
	opLease   = "lease"   // a pending job was leased to a worker
	opRequeue = "requeue" // a lease was taken back and the job re-queued
	opAck     = "ack"     // a result was accepted (carries the full record)
	opFail    = "fail"    // a deterministic worker-side failure settled the job
	opDequeue = "dequeue" // the job left the queue without a result (withdrawn)
)

// walRecord is one JSONL line of the log. Which fields are set depends
// on Op: enqueue carries Job; lease and requeue carry Key (and Worker
// for lease); ack carries Rec; fail and dequeue carry Key (and Error
// for fail).
type walRecord struct {
	Op     string            `json:"op"`
	Job    *campaign.WireJob `json:"job,omitempty"`
	Key    string            `json:"key,omitempty"`
	Worker string            `json:"worker,omitempty"`
	Rec    *campaign.Record  `json:"rec,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// State-directory file names.
const (
	walFile  = "queue.wal"
	snapFile = "queue.snap"
)

// wal is the open log: the append handle on the tail plus the record
// count that triggers compaction. All methods run under the owning
// coordinator's mutex.
type wal struct {
	dir      string
	tail     *os.File
	tailRecs int

	// Latency instrumentation, set by Coordinator.RegisterMetrics. Nil
	// until then — and nil metric receivers are no-ops, so the hot
	// paths observe unconditionally.
	appendH     *metrics.Histogram
	fsyncH      *metrics.Histogram
	compactH    *metrics.Histogram
	compactions *metrics.Counter
}

// openWAL opens (creating if needed) the log under dir, replays
// snapshot then repaired tail into a fresh walState, and returns both.
func openWAL(dir string) (*wal, *walState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: state dir: %w", err)
	}
	st := newWALState()

	// The snapshot is written whole and renamed into place, so unlike
	// the tail it can never hold a legal torn write: any malformed or
	// unterminated content is real corruption and refuses to load.
	snapPath := filepath.Join(dir, snapFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		offset := 0
		for len(data) > offset {
			nl := bytes.IndexByte(data[offset:], '\n')
			if nl < 0 {
				return nil, nil, fmt.Errorf("cluster: wal snapshot %s: unterminated record at byte %d; the snapshot is written atomically, so this is corruption — repair or remove the state directory", snapPath, offset)
			}
			if err := applyWALLine(st, data[offset:offset+nl]); err != nil {
				return nil, nil, fmt.Errorf("cluster: wal snapshot %s: corrupt record at byte %d: %w; repair or remove the state directory", snapPath, offset, err)
			}
			offset += nl + 1
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("cluster: read wal snapshot: %w", err)
	}

	tail, err := campaign.RecoverJSONL(filepath.Join(dir, walFile), func(line []byte) error {
		return applyWALLine(st, line)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: wal: %w", err)
	}
	syncDir(dir)
	return &wal{dir: dir, tail: tail}, st, nil
}

// applyWALLine decodes one log line and applies it to st. Any error
// marks the line corrupt — replay rejects rather than guesses.
func applyWALLine(st *walState, line []byte) error {
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return err
	}
	return st.apply(rec)
}

// append marshals recs into one buffer and lands them with a single
// Write and a single fsync, so a kill tears at most one record and a
// batch (a multi-job lease, a worker's result post) costs one sync. The
// transition must not take effect in memory until append returns nil.
func (w *wal) append(recs ...walRecord) error {
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("cluster: wal marshal: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := faultpoint.Check("wal.append.err"); err != nil {
		return err
	}
	faultpoint.Hit("wal.append.before")
	if faultpoint.Active("wal.append.torn") {
		// Land half the batch mid-record, then die: exactly the torn
		// tail a power loss mid-append leaves for recovery to repair.
		w.tail.Write(buf.Bytes()[:buf.Len()/2])
		w.tail.Sync()
		faultpoint.Hit("wal.append.torn")
	}
	start := time.Now()
	if _, err := w.tail.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("cluster: wal append: %w", err)
	}
	wrote := time.Now()
	w.appendH.Observe(wrote.Sub(start).Seconds())
	faultpoint.Hit("wal.sync.before")
	if err := w.tail.Sync(); err != nil {
		return fmt.Errorf("cluster: wal sync: %w", err)
	}
	w.fsyncH.Observe(time.Since(wrote).Seconds())
	w.tailRecs += len(recs)
	return nil
}

// compact folds the queue state into a fresh snapshot and resets the
// tail: snapshot records go to a temp file (fsynced), the temp file
// renames over queue.snap (atomic; the directory is fsynced), then the
// tail truncates. A crash at any point leaves a loadable log — before
// the rename the old snapshot+tail still replay; between rename and
// truncation the stale tail re-applies records the new snapshot already
// absorbed, which replay's idempotence makes harmless.
func (w *wal) compact(snapshot []walRecord) error {
	faultpoint.Hit("wal.compact.before")
	if err := faultpoint.Check("wal.compact.err"); err != nil {
		return err
	}
	start := time.Now()
	var buf bytes.Buffer
	for _, r := range snapshot {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("cluster: wal compact marshal: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := filepath.Join(w.dir, snapFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: wal compact: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("cluster: wal compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: wal compact sync: %w", err)
	}
	f.Close()
	faultpoint.Hit("wal.compact.tmp")
	if err := os.Rename(tmp, filepath.Join(w.dir, snapFile)); err != nil {
		return fmt.Errorf("cluster: wal compact rename: %w", err)
	}
	syncDir(w.dir)
	faultpoint.Hit("wal.compact.renamed")
	if err := w.tail.Truncate(0); err != nil {
		return fmt.Errorf("cluster: wal truncate tail: %w", err)
	}
	w.tail.Sync()
	w.tailRecs = 0
	w.compactH.Observe(time.Since(start).Seconds())
	w.compactions.Inc()
	return nil
}

// close releases the tail handle. Compaction-on-shutdown is the
// coordinator's business; close itself writes nothing.
func (w *wal) close() {
	w.tail.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable. Best-effort: not every filesystem
// supports it, and the data writes are already synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
