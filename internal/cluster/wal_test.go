package cluster

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/simtest"
)

// dispatchAsync parks a Dispatch call in a goroutine and returns the
// channel its outcome lands on. Callers that only need the job queued
// (not its result) can ignore the channel — Crash/Close releases the
// goroutine with ErrClosed.
func dispatchAsync(c *Coordinator, j campaign.Job) <-chan error {
	errs := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), j)
		errs <- err
	}()
	return errs
}

// waitPending polls until n jobs are pending, so tests can dispatch in
// a deterministic enqueue order.
func waitPending(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	simtest.WaitFor(t, 5*time.Second, func() bool { return c.Pending() == n },
		"pending = %d, want %d", func() any { return c.Pending() }, n)
}

// writeWALFile writes records as JSONL to path, for tests that
// hand-craft log states the coordinator's own writer would not produce.
func writeWALFile(t *testing.T, path string, recs ...walRecord) {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALRestartResumesQueue is the golden-state test: a coordinator
// killed mid-campaign — some jobs pending, one leased, one acked —
// must reopen to exactly the pre-crash state minus the unacknowledged
// in-flight transitions: the ack survives as an orphan, the lease is
// forfeited back to pending, and the queue order is preserved.
func TestWALRestartResumesQueue(t *testing.T) {
	cfg := Config{LeaseTTL: time.Minute, StateDir: t.TempDir()}
	c1, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c1.Register("w1", 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(t, 1, 2) // 2 policies x 2 seeds = 4 jobs
	for i, j := range jobs {
		dispatchAsync(c1, j)
		waitPending(t, c1, i+1)
	}
	batch, err := c1.Lease(w.ID, 2, 0, Liveness{})
	if err != nil || len(batch) != 2 {
		t.Fatalf("lease: %v (%d jobs)", err, len(batch))
	}
	rec0 := testRecord(t, jobs[0])
	if acc, _, err := c1.Complete(w.ID, []campaign.Record{rec0}, nil); err != nil || acc != 1 {
		t.Fatalf("complete: %v (accepted %d)", err, acc)
	}
	c1.Crash()

	c2, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rec := c2.Recovered()

	wantKeys := []string{jobs[1].Key(), jobs[2].Key(), jobs[3].Key()}
	var gotKeys []string
	for _, wj := range rec.Jobs {
		gotKeys = append(gotKeys, wj.Key)
	}
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Errorf("recovered jobs = %v, want %v", gotKeys, wantKeys)
	}
	if want := map[string]string{jobs[1].Key(): w.ID}; !reflect.DeepEqual(rec.Forfeited, want) {
		t.Errorf("forfeited = %v, want %v", rec.Forfeited, want)
	}
	if len(rec.Orphans) != 1 || !reflect.DeepEqual(rec.Orphans[0], rec0) {
		t.Errorf("orphans = %+v, want exactly the acked record", rec.Orphans)
	}
	if got := c2.Requeues(); got != 1 {
		t.Errorf("requeues = %d, want 1 (the forfeited lease)", got)
	}
	if got := c2.Pending(); got != 3 {
		t.Errorf("pending = %d, want 3", got)
	}

	// The resumed queue must actually drain: a fresh worker leases the
	// three recovered jobs, completes them, and Dispatch then serves
	// every result — including the pre-crash orphan — from the durable
	// settled set.
	w2, err := c2.Register("w2", 4)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := c2.Lease(w2.ID, 8, 0, Liveness{})
	if err != nil || len(batch2) != 3 {
		t.Fatalf("lease after restart: %v (%d jobs)", err, len(batch2))
	}
	var recs []campaign.Record
	for _, wj := range batch2 {
		j, err := wj.Job()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, testRecord(t, j))
	}
	if acc, _, err := c2.Complete(w2.ID, recs, nil); err != nil || acc != 3 {
		t.Fatalf("complete after restart: %v (accepted %d)", err, acc)
	}
	for _, j := range jobs {
		got, err := c2.Dispatch(context.Background(), j)
		if err != nil {
			t.Fatalf("dispatch settled %s: %v", j.Key(), err)
		}
		if got.Key != j.Key() {
			t.Fatalf("dispatch settled %s returned record for %s", j.Key(), got.Key)
		}
	}
}

// TestWALTornTailRepaired: a fragment with no trailing newline — the
// legal signature of a kill mid-append — is dropped on replay, keeping
// everything before it.
func TestWALTornTailRepaired(t *testing.T) {
	cfg := Config{LeaseTTL: time.Minute, StateDir: t.TempDir()}
	c1, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Register("w1", 1); err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]
	dispatchAsync(c1, j)
	waitPending(t, c1, 1)
	c1.Crash()

	walPath := filepath.Join(cfg.StateDir, walFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"enq`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatalf("torn tail not repaired: %v", err)
	}
	defer c2.Close()
	rec := c2.Recovered()
	if len(rec.Jobs) != 1 || rec.Jobs[0].Key != j.Key() {
		t.Errorf("recovered jobs = %+v, want the one enqueued job", rec.Jobs)
	}
}

// TestWALStaleTailIdempotent reopens the state a crash between a
// compaction's snapshot rename and tail truncation leaves behind: the
// tail's records predate the snapshot that already absorbed them.
// Replay must converge to the snapshot's state, not double anything.
func TestWALStaleTailIdempotent(t *testing.T) {
	jobs := testJobs(t, 1)
	wireA, wireB := jobs[0].Wire(), jobs[1].Wire()
	recB := testRecord(t, jobs[1])
	dir := t.TempDir()
	// Post-compaction snapshot: A live, B acked.
	writeWALFile(t, filepath.Join(dir, snapFile),
		walRecord{Op: opEnqueue, Job: &wireA},
		walRecord{Op: opAck, Rec: &recB},
	)
	// Stale pre-compaction tail: both enqueues, B's lease and ack.
	writeWALFile(t, filepath.Join(dir, walFile),
		walRecord{Op: opEnqueue, Job: &wireA},
		walRecord{Op: opEnqueue, Job: &wireB},
		walRecord{Op: opLease, Key: wireB.Key, Worker: "w000001-dead"},
		walRecord{Op: opAck, Rec: &recB},
	)
	c, err := OpenCoordinator(Config{LeaseTTL: time.Minute, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := c.Recovered()
	if len(rec.Jobs) != 1 || rec.Jobs[0].Key != wireA.Key {
		t.Errorf("recovered jobs = %+v, want only job A once", rec.Jobs)
	}
	if len(rec.Forfeited) != 0 {
		t.Errorf("forfeited = %v, want none (B's lease settled)", rec.Forfeited)
	}
	if len(rec.Orphans) != 1 || !reflect.DeepEqual(rec.Orphans[0], recB) {
		t.Errorf("orphans = %+v, want exactly B's record once", rec.Orphans)
	}
}

// TestWALSnapshotCorruptionRefused: the snapshot is written atomically,
// so malformed content there is real corruption — recovery must reject
// it with a precise error, never guess.
func TestWALSnapshotCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCoordinator(Config{StateDir: dir})
	if err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
	for _, want := range []string{"corrupt record at byte 0", "repair or remove"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, snapFile), []byte(`{"op":"enq`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCoordinator(Config{StateDir: dir2}); err == nil || !strings.Contains(err.Error(), "unterminated record") {
		t.Errorf("torn snapshot: err = %v, want unterminated-record corruption", err)
	}
}

// TestWALCorruptTailRefused: a newline-terminated tail line that does
// not parse is not a torn write — it means the file was edited or the
// disk corrupted it, and recovery must refuse rather than drop state.
func TestWALCorruptTailRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte("garbage line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCoordinator(Config{StateDir: dir})
	if err == nil || !strings.Contains(err.Error(), "corrupt record at byte 0") {
		t.Errorf("corrupt tail: err = %v, want corrupt-record rejection", err)
	}
}

// TestWALCompactionPrunesPersisted: with the store vouching for every
// key, compaction should shrink the WAL to nothing — a restart then
// recovers a clean slate instead of re-serving history.
func TestWALCompactionPrunesPersisted(t *testing.T) {
	cfg := Config{
		LeaseTTL:     time.Minute,
		StateDir:     t.TempDir(),
		CompactEvery: 1, // compact on every transition
		Persisted:    func(string) bool { return true },
	}
	c1, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c1.Register("w1", 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(t, 1)
	results := make([]<-chan error, len(jobs))
	for i, j := range jobs {
		results[i] = dispatchAsync(c1, j)
		waitPending(t, c1, i+1)
	}
	batch, err := c1.Lease(w.ID, 4, 0, Liveness{})
	if err != nil || len(batch) != 2 {
		t.Fatalf("lease: %v (%d jobs)", err, len(batch))
	}
	recs := []campaign.Record{testRecord(t, jobs[0]), testRecord(t, jobs[1])}
	if _, _, err := c1.Complete(w.ID, recs, nil); err != nil {
		t.Fatal(err)
	}
	for _, ch := range results {
		if err := <-ch; err != nil {
			t.Fatalf("dispatch: %v", err)
		}
	}
	c1.Crash()

	c2, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rec := c2.Recovered()
	if len(rec.Jobs) != 0 || len(rec.Forfeited) != 0 || len(rec.Orphans) != 0 {
		t.Errorf("recovered %+v, want a clean slate (everything persisted)", rec)
	}
}

// TestWALCloseResumesQueue: Close (the graceful path) compacts live
// jobs into the snapshot, so even a drain that could not finish the
// campaign leaves it resumable.
func TestWALCloseResumesQueue(t *testing.T) {
	cfg := Config{LeaseTTL: time.Minute, StateDir: t.TempDir()}
	c1, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Register("w1", 1); err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(t, 1)
	for i, j := range jobs {
		dispatchAsync(c1, j)
		waitPending(t, c1, i+1)
	}
	c1.Close()

	c2, err := OpenCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := len(c2.Recovered().Jobs); got != len(jobs) {
		t.Errorf("recovered %d jobs after Close, want %d", got, len(jobs))
	}
}

// TestOpenCoordinatorWithoutStateDir: an empty StateDir must behave
// exactly like NewCoordinator — no files, no recovery, Crash safe.
func TestOpenCoordinatorWithoutStateDir(t *testing.T) {
	c, err := OpenCoordinator(Config{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Recovered()
	if len(rec.Jobs) != 0 || len(rec.Forfeited) != 0 || len(rec.Orphans) != 0 {
		t.Errorf("in-memory coordinator recovered %+v, want nothing", rec)
	}
	c.Crash()
	if _, err := c.Dispatch(context.Background(), testJobs(t, 1)[0]); err != ErrClosed {
		t.Errorf("dispatch after crash: %v, want ErrClosed", err)
	}
}

// TestWALConcurrentAckCompaction hammers the hottest durability race:
// with CompactEvery=1 every logged record triggers a snapshot rewrite,
// so leases, acknowledgements and compactions from several workers
// interleave as tightly as the coordinator mutex allows. Run under
// -race this is the proof that compaction never races an ack — and the
// final reopen proves no interleaving ever snapshot away a record.
func TestWALConcurrentAckCompaction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCoordinator(Config{LeaseTTL: time.Minute, StateDir: dir, CompactEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	jobs := testJobs(t, 1, 2, 3, 4, 5, 6) // 12 jobs
	recs := make(map[string]campaign.Record, len(jobs))
	for _, j := range jobs {
		recs[j.Key()] = testRecord(t, j)
	}
	// Register the fleet first: with no live workers Dispatch refuses to
	// queue (local fallback), and this test wants everything on the wire.
	workers := make([]string, 3)
	for i := range workers {
		w, err := c.Register("racer", 2)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w.ID
	}
	done := make([]<-chan error, 0, len(jobs))
	for _, j := range jobs {
		done = append(done, dispatchAsync(c, j))
	}

	// Three workers race lease/complete until the queue is dry.
	stop := make(chan struct{})
	for _, id := range workers {
		go func(id string) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch, err := c.Lease(id, 2, 10*time.Millisecond, Liveness{})
				if err != nil {
					return // closed
				}
				for _, wire := range batch {
					if _, _, err := c.Complete(id, []campaign.Record{recs[wire.Key]}, nil); err != nil {
						return
					}
				}
			}
		}(id)
	}

	for i, ch := range done {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("dispatch %d: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("dispatch %d never completed", i)
		}
	}
	close(stop)
	c.Close()

	// Every ack must have survived the compaction storm: the next boot
	// sees all twelve results settled and nothing left to run.
	c2, err := OpenCoordinator(Config{LeaseTTL: time.Minute, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rec := c2.Recovered()
	if len(rec.Jobs) != 0 {
		t.Errorf("reopen found %d live jobs, want 0", len(rec.Jobs))
	}
	if got := len(rec.Orphans); got != len(jobs) {
		t.Errorf("reopen found %d acknowledged results, want %d", got, len(jobs))
	}
	for _, orphan := range rec.Orphans {
		if want, ok := recs[orphan.Key]; !ok || !reflect.DeepEqual(orphan, want) {
			t.Errorf("settled record %s differs after the compaction storm", orphan.Key)
		}
	}
}
