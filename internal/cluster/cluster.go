// Package cluster distributes campaign jobs across a fleet of worker
// processes. The daemon side is a Coordinator — a lease-based in-memory
// job queue: workers register, lease batches of content-hash-keyed
// jobs, simulate them, and post the results back; a worker that stops
// heartbeating for a lease TTL is presumed dead and its leased jobs are
// re-issued, so a killed worker never loses work. The worker side is
// Worker, a pull loop over the daemon's /v1/workers HTTP endpoints
// (cmd/mflushworker is its binary).
//
// The layer sits *under* campaign.Cache, not beside it: the daemon
// routes each cache miss through a Router, which sends it to the fleet
// (or runs it locally when no workers are live), and the cache remains
// the single writer to the JSONL store. Determinism makes the whole
// arrangement exactly-once in effect: the cache single-flights each key,
// the coordinator re-issues only leases whose worker is gone, and a
// duplicate result for an already-completed key is discarded — it would
// be byte-identical anyway. internal/server's cluster integration tests
// enforce this: a campaign sharded across three workers aggregates
// byte-identically to a single-process run, even when a worker is
// killed mid-campaign.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultpoint"
)

// Coordinator failure modes callers dispatch on.
var (
	// ErrClosed reports a coordinator shut down by Close; nothing can be
	// dispatched, leased or completed any more.
	ErrClosed = errors.New("cluster: coordinator closed")
	// ErrNoWorkers reports that no live worker can run the job — either
	// none was registered at dispatch, or every worker died while it was
	// queued. The Router maps it to a local-simulation fallback.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrUnknownWorker reports a worker ID the coordinator does not
	// know — never issued, deregistered, or dropped after missing
	// heartbeats for a lease TTL. The worker should re-register.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
)

// DefaultLeaseTTL is how long a worker may go unheard-from before it is
// presumed dead and its leased jobs are re-issued, when Config does not
// say otherwise.
const DefaultLeaseTTL = 15 * time.Second

// DefaultCompactEvery is the WAL tail size (in records) that triggers
// compaction when Config does not say otherwise.
const DefaultCompactEvery = 1024

// Config parameterises a Coordinator.
type Config struct {
	// LeaseTTL is the worker-liveness horizon: a worker silent for this
	// long is dropped and its leased jobs re-queued (<= 0:
	// DefaultLeaseTTL). Workers heartbeat at a fraction of it.
	LeaseTTL time.Duration
	// StateDir, when non-empty, makes the queue durable: OpenCoordinator
	// write-ahead-logs every transition under this directory and replays
	// the log at boot, so a daemon restart resumes mid-campaign.
	// NewCoordinator ignores it (in-memory queue, today's behaviour).
	StateDir string
	// CompactEvery bounds the WAL tail: once this many records
	// accumulate since the last snapshot, the next transition folds the
	// live queue state into a fresh snapshot and truncates the tail
	// (<= 0: DefaultCompactEvery).
	CompactEvery int
	// Persisted, when set, reports whether the completed record for a
	// job key is already durable in the result store. Compaction drops
	// acknowledged results from the WAL once Persisted confirms them;
	// with Persisted nil they are retained across compactions, which is
	// safe (replaying them is idempotent) but unbounded.
	Persisted func(key string) bool
}

// Coordinator is the fleet's job queue: Dispatch parks campaign jobs
// here, workers drain them via Register/Lease/Complete, and a reaper
// re-issues the leases of dead workers. All methods are safe for
// concurrent use. Create with NewCoordinator; Close releases the reaper
// and fails everything still queued.
type Coordinator struct {
	ttl time.Duration

	// epoch is a random per-coordinator tag baked into worker IDs, so
	// an ID issued by an earlier daemon incarnation can never collide
	// with a fresh one: a stale worker's calls must 404 (forcing it to
	// re-register) rather than silently impersonate — and keep alive —
	// some new worker that happened to draw the same sequence number.
	epoch string

	mu      sync.Mutex
	closed  bool
	seq     int // worker ID counter
	workers map[string]*workerState
	tasks   map[string]*task // every queued-or-leased job by key
	pending []*task          // FIFO of unleased tasks
	// requeued counts leases taken back from dead or departing workers
	// and re-issued — the fleet's churn metric, served by /v1/workers.
	requeued uint64
	// Lease lifecycle counters behind /metrics: every grant, every TTL
	// expiry, every forfeiture (clean deregister requeues plus leases a
	// dead incarnation held). requeued == leasesExpired+leasesForfeited.
	leasesIssued    uint64
	leasesExpired   uint64
	leasesForfeited uint64
	// pm, when RegisterMetrics has run, holds the per-worker gauge
	// families updated on heartbeats and pruned on worker departure.
	pm   *perWorkerMetrics
	wake chan struct{} // closed+replaced when pending grows
	done chan struct{} // closed by Close; stops the reaper

	// Durability state; all nil/zero for an in-memory coordinator.
	wal          *wal
	compactEvery int
	persisted    func(key string) bool
	// settled holds every durably acknowledged result until Persisted
	// confirms the store has it (compaction prunes confirmed entries).
	// It carries two guarantees: an ack survives a crash that lands
	// between releasing the Dispatch waiter and the store append, and a
	// recovered job completed before the daemon's recovery dispatcher
	// re-attached still reaches the store — Dispatch serves settled
	// results directly, which routes them in through the cache.
	settled map[string]campaign.Record
	// unresolved carries WAL jobs this build could not decode (version
	// skew) through every compaction verbatim, so they are not lost to
	// a binary that cannot run them.
	unresolved []campaign.WireJob
	recovery   Recovery
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        string
	name      string
	capacity  int
	lastSeen  time.Time
	leased    map[string]*task
	completed uint64
	// Self-reported liveness detail, refreshed by every heartbeat: the
	// worker's own lifetime counters survive its re-registrations, so
	// they can disagree with (exceed) the coordinator-side completed.
	lastJobKey   string
	jobsDone     uint64
	cyclesPerSec float64
}

// task is one dispatched job travelling through the queue.
type task struct {
	job      campaign.Job
	waiters  int       // Dispatch callers blocked on done
	leasedBy string    // worker ID, "" while pending
	leasedAt time.Time // grant time, meaningful only while leasedBy != ""

	done chan struct{} // closed on completion or failure
	rec  campaign.Record
	err  error
}

// NewCoordinator returns a running in-memory coordinator and starts its
// reaper. Config.StateDir is ignored here — a durable queue comes from
// OpenCoordinator.
func NewCoordinator(cfg Config) *Coordinator {
	c := newCoordinator(cfg)
	go c.reaper()
	return c
}

// newCoordinator builds the coordinator without starting the reaper.
func newCoordinator(cfg Config) *Coordinator {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	epoch := make([]byte, 4)
	rand.Read(epoch)
	return &Coordinator{
		ttl:     ttl,
		epoch:   hex.EncodeToString(epoch),
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*task),
		wake:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// OpenCoordinator returns a running coordinator whose queue is durable
// under cfg.StateDir: every transition is write-ahead-logged (and
// fsynced) before it takes effect, and opening an existing state
// directory replays the log, re-queueing the dead incarnation's
// unfinished jobs (leases forfeited — their worker IDs belong to a dead
// epoch) and carrying its acknowledged-but-possibly-unpersisted results
// forward. Recovered() reports what was restored. With an empty
// StateDir this is exactly NewCoordinator.
func OpenCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.StateDir == "" {
		return NewCoordinator(cfg), nil
	}
	w, st, err := openWAL(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	c := newCoordinator(cfg)
	c.wal = w
	c.compactEvery = cfg.CompactEvery
	if c.compactEvery <= 0 {
		c.compactEvery = DefaultCompactEvery
	}
	c.persisted = cfg.Persisted
	c.settled = make(map[string]campaign.Record)
	c.recovery = recoveryFromState(st)
	for _, wire := range c.recovery.Jobs {
		j, err := wire.Job()
		if err != nil || j.Key() != wire.Key {
			// A job this build cannot decode or re-key: keep it in the
			// WAL for a future build, but it cannot be queued.
			c.unresolved = append(c.unresolved, wire)
			continue
		}
		t := &task{job: j, done: make(chan struct{})}
		c.tasks[wire.Key] = t
		c.pending = append(c.pending, t)
	}
	// Forfeited leases become plain pending jobs; count the churn.
	c.requeued += uint64(len(c.recovery.Forfeited))
	c.leasesForfeited += uint64(len(c.recovery.Forfeited))
	for _, rec := range c.recovery.Orphans {
		c.settled[rec.Key] = rec
	}
	// Fold the recovered state into a fresh snapshot immediately, so
	// boot replay work stays bounded no matter how often the daemon
	// crash-loops.
	if err := c.wal.compact(c.snapshotLocked()); err != nil {
		c.wal.close()
		return nil, err
	}
	go c.reaper()
	return c, nil
}

// Recovered reports what a durable coordinator restored from its
// write-ahead log at boot — zero-valued for a fresh state directory or
// an in-memory coordinator. The returned value is shared; treat it as
// read-only.
func (c *Coordinator) Recovered() Recovery { return c.recovery }

// LeaseTTL returns the worker-liveness horizon the coordinator enforces
// — the TTL the register response advertises to workers.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// Close shuts the queue down: every queued or leased task fails with
// ErrClosed (releasing its Dispatch callers), the reaper stops, and all
// later calls fail. The daemon closes the coordinator after draining,
// so no campaign is waiting by then in the normal path. A durable
// coordinator first compacts a final snapshot — still-queued jobs stay
// in the WAL as live, so the next boot resumes them.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.wal != nil {
		// Best-effort: an unwritable final snapshot leaves the previous
		// snapshot+tail, which replay to the same state.
		c.wal.compact(c.snapshotLocked())
	}
	c.shutdownLocked()
}

// Crash abandons the coordinator the way a process death would: waiters
// fail with ErrClosed, the reaper stops, and — unlike Close — nothing
// is compacted or logged, so the WAL files are left exactly as the last
// transition wrote them. In-process restart tests use it to exercise
// the same recovery path the real crash matrix drives with SIGKILL.
func (c *Coordinator) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.shutdownLocked()
}

// shutdownLocked is the shared tail of Close and Crash. The caller
// holds c.mu.
func (c *Coordinator) shutdownLocked() {
	c.closed = true
	for key, t := range c.tasks {
		t.err = ErrClosed
		close(t.done)
		delete(c.tasks, key)
	}
	c.pending = nil
	for _, w := range c.workers {
		clear(w.leased)
	}
	close(c.done)
	if c.wal != nil {
		c.wal.close()
	}
}

// snapshotLocked flattens the current queue into WAL records: live
// tasks in queue order (pending first, then leased — sorted by key for
// determinism — with their lease records), jobs this build could not
// decode, and acknowledged results not yet confirmed persisted (the
// Persisted check prunes confirmed ones here, which is what bounds the
// WAL). The caller holds c.mu.
func (c *Coordinator) snapshotLocked() []walRecord {
	var recs []walRecord
	seen := make(map[string]bool, len(c.tasks))
	for _, t := range c.pending {
		key := t.job.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		wire := t.job.Wire()
		recs = append(recs, walRecord{Op: opEnqueue, Job: &wire})
	}
	var leasedKeys []string
	for key := range c.tasks {
		if !seen[key] {
			leasedKeys = append(leasedKeys, key)
		}
	}
	sort.Strings(leasedKeys)
	for _, key := range leasedKeys {
		t := c.tasks[key]
		wire := t.job.Wire()
		recs = append(recs, walRecord{Op: opEnqueue, Job: &wire})
		if t.leasedBy != "" {
			recs = append(recs, walRecord{Op: opLease, Key: key, Worker: t.leasedBy})
		}
	}
	for i := range c.unresolved {
		recs = append(recs, walRecord{Op: opEnqueue, Job: &c.unresolved[i]})
	}
	var settledKeys []string
	for key := range c.settled {
		if c.persisted != nil && c.persisted(key) {
			delete(c.settled, key)
			continue
		}
		settledKeys = append(settledKeys, key)
	}
	sort.Strings(settledKeys)
	for _, key := range settledKeys {
		rec := c.settled[key]
		recs = append(recs, walRecord{Op: opAck, Rec: &rec})
	}
	return recs
}

// maybeCompactLocked compacts once the tail has grown past the
// configured window. Failure is tolerated: the triggering transition is
// already durable in the tail, and the next transition retries. The
// caller holds c.mu.
func (c *Coordinator) maybeCompactLocked() {
	if c.wal == nil || c.wal.tailRecs < c.compactEvery {
		return
	}
	c.wal.compact(c.snapshotLocked())
}

// logBestEffort appends transitions that only affect scheduling, not
// correctness (requeues, withdrawals): if the append fails, replay
// re-derives a safe state anyway — a missed requeue record merely
// leaves a lease to forfeit at the next boot. The caller holds c.mu.
func (c *Coordinator) logBestEffort(recs ...walRecord) {
	if c.wal == nil || len(recs) == 0 {
		return
	}
	c.wal.append(recs...)
	c.maybeCompactLocked()
}

// reaper periodically drops workers that missed their lease TTL and
// re-issues their jobs. Mutating calls also reap inline, so the ticker
// only matters when the coordinator is otherwise idle.
func (c *Coordinator) reaper() {
	interval := c.ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.mu.Lock()
			c.reapLocked()
			c.mu.Unlock()
		case <-c.done:
			return
		}
	}
}

// reapLocked drops every worker unseen for a lease TTL, re-queues its
// leased tasks, and — when that leaves no live worker at all — fails
// everything still queued with ErrNoWorkers so dispatchers can fall
// back to local simulation instead of waiting for a fleet that is gone.
// The caller holds c.mu.
func (c *Coordinator) reapLocked() {
	if c.closed {
		return
	}
	now := time.Now()
	var requeues []walRecord
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.ttl {
			continue
		}
		for key, t := range w.leased {
			t.leasedBy = ""
			c.requeued++
			c.leasesExpired++
			c.pending = append(c.pending, t)
			delete(w.leased, key)
			requeues = append(requeues, walRecord{Op: opRequeue, Key: key})
		}
		c.pm.remove(w)
		delete(c.workers, id)
	}
	c.logBestEffort(requeues...)
	if len(c.workers) == 0 && len(c.tasks) > 0 {
		// Fleet gone: fail every task a dispatcher is waiting on, so the
		// caller falls back to local simulation. Recovered tasks with no
		// waiter yet stay queued — failing them would discard work no
		// one is around to re-run; the recovery dispatcher attaches to
		// (or withdraws) them when it arrives.
		var stranded bool
		var dequeues []walRecord
		for key, t := range c.tasks {
			if t.waiters == 0 {
				continue
			}
			t.err = ErrNoWorkers
			close(t.done)
			delete(c.tasks, key)
			dequeues = append(dequeues, walRecord{Op: opDequeue, Key: key})
			stranded = true
		}
		if stranded {
			live := c.pending[:0]
			for _, t := range c.pending {
				if _, ok := c.tasks[t.job.Key()]; ok {
					live = append(live, t)
				}
			}
			c.pending = live
			c.logBestEffort(dequeues...)
		}
		return
	}
	if len(c.pending) > 0 {
		c.wakeLocked()
	}
}

// wakeLocked releases every Lease long-poller. The caller holds c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// withdrawLocked removes an unleased, unwaited task from the queue and
// logs its departure. Nobody holds its done channel, so nothing is
// closed. The caller holds c.mu.
func (c *Coordinator) withdrawLocked(key string, t *task) {
	delete(c.tasks, key)
	for i, p := range c.pending {
		if p == t {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	c.logBestEffort(walRecord{Op: opDequeue, Key: key})
}

// Dispatch queues job j for the fleet and blocks until a worker posts
// its result (or failure). It returns ErrNoWorkers immediately when no
// live worker is registered, and ErrClosed once the coordinator shuts
// down. While the job is still *pending* — not yet leased — cancelling
// ctx withdraws it and returns ctx.Err(); once leased, Dispatch waits
// for the worker like an uninterruptible local run, so in-flight fleet
// work always lands in the store.
func (c *Coordinator) Dispatch(ctx context.Context, j campaign.Job) (campaign.Record, error) {
	key := j.Key()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return campaign.Record{}, ErrClosed
	}
	if rec, ok := c.settled[key]; ok {
		// Acknowledged durably (possibly by the previous incarnation)
		// but never handed to a dispatcher: serve it, so the cache
		// routes it into the result store.
		c.mu.Unlock()
		return rec, nil
	}
	c.reapLocked()
	t := c.tasks[key]
	if len(c.workers) == 0 {
		if t != nil && t.waiters == 0 {
			// A recovered task with no fleet to run it: withdraw it so
			// the caller's local fallback becomes the one execution —
			// leaving it queued could double-run the job when a worker
			// arrives mid-fallback.
			c.withdrawLocked(key, t)
		}
		c.mu.Unlock()
		return campaign.Record{}, ErrNoWorkers
	}
	if t == nil {
		t = &task{job: j, done: make(chan struct{})}
		if c.wal != nil {
			wire := j.Wire()
			if err := c.wal.append(walRecord{Op: opEnqueue, Job: &wire}); err != nil {
				c.mu.Unlock()
				return campaign.Record{}, err
			}
		}
		c.tasks[key] = t
		c.pending = append(c.pending, t)
		// Compact only now that the state reflects the logged record —
		// a snapshot taken between the two would drop it.
		c.maybeCompactLocked()
		c.wakeLocked()
	}
	t.waiters++
	c.mu.Unlock()

	select {
	case <-t.done:
		return t.rec, t.err
	case <-ctx.Done():
	}
	// Cancelled: withdraw the job if it is still pending and no one else
	// is waiting on it; a leased job is ridden to completion.
	c.mu.Lock()
	select {
	case <-t.done:
		c.mu.Unlock()
		return t.rec, t.err
	default:
	}
	t.waiters--
	if t.leasedBy == "" && t.waiters == 0 {
		c.withdrawLocked(key, t)
		c.mu.Unlock()
		return campaign.Record{}, ctx.Err()
	}
	if t.leasedBy == "" {
		// Another campaign still wants the job; leave it queued.
		c.mu.Unlock()
		return campaign.Record{}, ctx.Err()
	}
	c.mu.Unlock()
	<-t.done
	return t.rec, t.err
}

// LiveWorkers returns how many registered workers are within their
// lease TTL — the Router's remote-vs-local routing signal.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	return len(c.workers)
}

// Pending returns how many dispatched jobs no worker has leased yet.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Requeues returns how many leases have ever been taken back from dead
// or departing workers and re-issued — 0 on a healthy fleet, so the
// counter is a direct measure of worker churn.
func (c *Coordinator) Requeues() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requeued
}

// Register admits a worker to the fleet and returns its assigned state
// (ID, normalised capacity). Capacity <= 0 registers as 1.
func (c *Coordinator) Register(name string, capacity int) (WorkerStatus, error) {
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return WorkerStatus{}, ErrClosed
	}
	c.seq++
	w := &workerState{
		id:       fmt.Sprintf("w%06d-%s", c.seq, c.epoch),
		name:     name,
		capacity: capacity,
		lastSeen: time.Now(),
		leased:   make(map[string]*task),
	}
	c.workers[w.id] = w
	c.pm.update(w)
	return w.status(), nil
}

// Deregister removes a worker cleanly (the SIGTERM-drain path): its
// remaining leases — a drained worker should have none — are re-queued
// immediately instead of waiting out the TTL.
func (c *Coordinator) Deregister(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	w := c.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	var requeues []walRecord
	for key, t := range w.leased {
		t.leasedBy = ""
		c.requeued++
		c.leasesForfeited++
		c.pending = append(c.pending, t)
		delete(w.leased, key)
		requeues = append(requeues, walRecord{Op: opRequeue, Key: key})
	}
	c.pm.remove(w)
	delete(c.workers, workerID)
	c.logBestEffort(requeues...)
	c.reapLocked() // strand check: this may have been the last worker
	if len(c.pending) > 0 {
		c.wakeLocked()
	}
	return nil
}

// Liveness is the self-reported detail a worker attaches to each
// lease/heartbeat call: what it last ran and how fast. The coordinator
// republishes it through /v1/workers and the per-worker /metrics
// gauges, so fleet dashboards can tell a parked worker from a wedged
// one without scraping every worker individually.
type Liveness struct {
	// LastJobKey is the key of the most recent job the worker finished
	// (successfully or not); empty until it has finished one.
	LastJobKey string
	// JobsDone is the worker's lifetime finished-job count. It survives
	// re-registration, unlike the coordinator's per-identity tally.
	JobsDone uint64
	// CyclesPerSec is the simulated-cycle rate of the worker's most
	// recent successful job (0 until one succeeds).
	CyclesPerSec float64
}

// Lease hands the calling worker up to max pending jobs and records the
// call as a heartbeat (max 0 is a pure heartbeat), adopting the
// liveness detail the worker reported. When nothing is pending it
// long-polls up to wait — capped at half the lease TTL so a parked
// worker still heartbeats — and returns an empty batch on timeout.
// Returns ErrUnknownWorker for IDs the coordinator dropped; the worker
// should re-register and retry.
func (c *Coordinator) Lease(workerID string, max int, wait time.Duration, live Liveness) ([]campaign.WireJob, error) {
	if wait > c.ttl/2 {
		wait = c.ttl / 2
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		c.reapLocked()
		w := c.workers[workerID]
		if w == nil {
			c.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = time.Now()
		w.lastJobKey, w.jobsDone, w.cyclesPerSec = live.LastJobKey, live.JobsDone, live.CyclesPerSec
		c.pm.update(w)
		if max <= 0 {
			c.mu.Unlock()
			return nil, nil
		}
		if len(c.pending) > 0 {
			n := min(max, len(c.pending))
			if c.wal != nil {
				// The grants go durable before the worker sees the
				// batch, so a crash right after the response still
				// knows which worker holds these jobs.
				grants := make([]walRecord, 0, n)
				for _, t := range c.pending[:n] {
					grants = append(grants, walRecord{Op: opLease, Key: t.job.Key(), Worker: workerID})
				}
				if err := c.wal.append(grants...); err != nil {
					c.mu.Unlock()
					return nil, err
				}
			}
			faultpoint.Hit("cluster.lease.granted")
			batch := make([]campaign.WireJob, 0, n)
			grantedAt := time.Now()
			for _, t := range c.pending[:n] {
				t.leasedBy = workerID
				t.leasedAt = grantedAt
				w.leased[t.job.Key()] = t
				batch = append(batch, t.job.Wire())
			}
			c.leasesIssued += uint64(n)
			c.pm.update(w)
			c.pending = append(c.pending[:0], c.pending[n:]...)
			// Compact only after the grants are reflected in memory, so
			// a snapshot here cannot drop them.
			c.maybeCompactLocked()
			c.mu.Unlock()
			return batch, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			c.mu.Unlock()
			return nil, nil
		}
		wake := c.wake
		c.mu.Unlock()
		timer := time.NewTimer(remaining)
		select {
		case <-wake:
		case <-timer.C:
		case <-c.done:
			timer.Stop()
			return nil, ErrClosed
		}
		timer.Stop()
	}
}

// JobFailure is a worker-reported per-job failure: the job's key and
// the simulator's error message. The coordinator fails the waiting
// campaign with it — simulator errors are deterministic, so re-issuing
// the job to another worker would only fail again.
type JobFailure struct {
	// Key is the failed job's content hash (echoed from the lease).
	Key string `json:"key"`
	// Error is the worker-side failure message.
	Error string `json:"error"`
}

// Complete records a batch of finished jobs from a worker — successful
// records and failures alike — and releases their Dispatch callers. It
// also counts as a heartbeat. The first result for a key wins; results
// for unknown or already-completed keys are counted in duplicates and
// discarded (a re-issued job's late second result is byte-identical
// anyway, so nothing is lost). Returns ErrUnknownWorker for dropped
// workers — their results are discarded too, because their leases were
// already re-issued.
func (c *Coordinator) Complete(workerID string, recs []campaign.Record, fails []JobFailure) (accepted, duplicates int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, 0, ErrClosed
	}
	c.reapLocked()
	w := c.workers[workerID]
	if w == nil {
		return 0, 0, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	if c.wal != nil {
		// Acks go durable — full records, fsynced — before the worker
		// gets its 200 and before any waiter is released: a result a
		// worker saw accepted can never be lost to a crash.
		var acks []walRecord
		for i := range recs {
			if c.tasks[recs[i].Key] != nil {
				acks = append(acks, walRecord{Op: opAck, Rec: &recs[i]})
			}
		}
		for _, f := range fails {
			if c.tasks[f.Key] != nil {
				acks = append(acks, walRecord{Op: opFail, Key: f.Key, Error: f.Error})
			}
		}
		if len(acks) > 0 {
			if err := c.wal.append(acks...); err != nil {
				return 0, 0, err
			}
		}
		faultpoint.Hit("cluster.ack.logged")
	}
	settle := func(key string, rec campaign.Record, failure error) {
		t := c.tasks[key]
		if t == nil {
			duplicates++
			return
		}
		if failure == nil && c.settled != nil {
			// Park the result until the store confirms it (compaction
			// asks Persisted): if the process dies before the waiter's
			// store append — or the task had no waiter at all — the next
			// boot re-serves it from here instead of re-running the job.
			c.settled[key] = rec
		}
		t.rec, t.err = rec, failure
		close(t.done)
		delete(c.tasks, key)
		if t.leasedBy != "" {
			if owner := c.workers[t.leasedBy]; owner != nil {
				delete(owner.leased, key)
			}
		} else {
			// Completed while queued for re-issue: drop it from pending
			// so no other worker leases a settled job.
			for i, p := range c.pending {
				if p == t {
					c.pending = append(c.pending[:i], c.pending[i+1:]...)
					break
				}
			}
		}
		accepted++
		if failure == nil {
			w.completed++
		}
	}
	for _, rec := range recs {
		settle(rec.Key, rec, nil)
	}
	for _, f := range fails {
		settle(f.Key, campaign.Record{}, fmt.Errorf("cluster: worker %s: %s", workerID, f.Error))
	}
	c.pm.update(w)
	c.maybeCompactLocked()
	return accepted, duplicates, nil
}

// WorkerStatus is the wire form of one fleet member, served by the
// daemon's GET /v1/workers endpoint.
type WorkerStatus struct {
	// ID is the coordinator-assigned worker identity — a sequence
	// number plus the coordinator's random epoch tag
	// ("w000001-1a2b3c4d"), so IDs from a previous daemon incarnation
	// never resolve.
	ID string `json:"id"`
	// Name is the worker's self-reported label (its -name flag).
	Name string `json:"name"`
	// Capacity is how many simulations the worker runs in parallel.
	Capacity int `json:"capacity"`
	// Leased is how many jobs the worker currently holds.
	Leased int `json:"leased"`
	// Completed counts jobs this worker finished successfully.
	Completed uint64 `json:"completed"`
	// LastSeen is the worker's most recent heartbeat.
	LastSeen time.Time `json:"last_seen"`
	// LastJobKey is the worker's self-reported most recently finished
	// job key; empty until it has finished one.
	LastJobKey string `json:"last_job_key,omitempty"`
	// JobsDone is the worker's self-reported lifetime finished-job
	// count, which survives re-registration (Completed does not).
	JobsDone uint64 `json:"jobs_done"`
	// CyclesPerSec is the self-reported simulated-cycle rate of the
	// worker's most recent successful job.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

func (w *workerState) status() WorkerStatus {
	return WorkerStatus{
		ID: w.id, Name: w.name, Capacity: w.capacity,
		Leased: len(w.leased), Completed: w.completed, LastSeen: w.lastSeen,
		LastJobKey: w.lastJobKey, JobsDone: w.jobsDone, CyclesPerSec: w.cyclesPerSec,
	}
}

// Workers snapshots the live fleet, sorted by worker ID.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
