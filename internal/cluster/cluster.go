// Package cluster distributes campaign jobs across a fleet of worker
// processes. The daemon side is a Coordinator — a lease-based in-memory
// job queue: workers register, lease batches of content-hash-keyed
// jobs, simulate them, and post the results back; a worker that stops
// heartbeating for a lease TTL is presumed dead and its leased jobs are
// re-issued, so a killed worker never loses work. The worker side is
// Worker, a pull loop over the daemon's /v1/workers HTTP endpoints
// (cmd/mflushworker is its binary).
//
// The layer sits *under* campaign.Cache, not beside it: the daemon
// routes each cache miss through a Router, which sends it to the fleet
// (or runs it locally when no workers are live), and the cache remains
// the single writer to the JSONL store. Determinism makes the whole
// arrangement exactly-once in effect: the cache single-flights each key,
// the coordinator re-issues only leases whose worker is gone, and a
// duplicate result for an already-completed key is discarded — it would
// be byte-identical anyway. internal/server's cluster integration tests
// enforce this: a campaign sharded across three workers aggregates
// byte-identically to a single-process run, even when a worker is
// killed mid-campaign.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Coordinator failure modes callers dispatch on.
var (
	// ErrClosed reports a coordinator shut down by Close; nothing can be
	// dispatched, leased or completed any more.
	ErrClosed = errors.New("cluster: coordinator closed")
	// ErrNoWorkers reports that no live worker can run the job — either
	// none was registered at dispatch, or every worker died while it was
	// queued. The Router maps it to a local-simulation fallback.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrUnknownWorker reports a worker ID the coordinator does not
	// know — never issued, deregistered, or dropped after missing
	// heartbeats for a lease TTL. The worker should re-register.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
)

// DefaultLeaseTTL is how long a worker may go unheard-from before it is
// presumed dead and its leased jobs are re-issued, when Config does not
// say otherwise.
const DefaultLeaseTTL = 15 * time.Second

// Config parameterises a Coordinator.
type Config struct {
	// LeaseTTL is the worker-liveness horizon: a worker silent for this
	// long is dropped and its leased jobs re-queued (<= 0:
	// DefaultLeaseTTL). Workers heartbeat at a fraction of it.
	LeaseTTL time.Duration
}

// Coordinator is the fleet's job queue: Dispatch parks campaign jobs
// here, workers drain them via Register/Lease/Complete, and a reaper
// re-issues the leases of dead workers. All methods are safe for
// concurrent use. Create with NewCoordinator; Close releases the reaper
// and fails everything still queued.
type Coordinator struct {
	ttl time.Duration

	// epoch is a random per-coordinator tag baked into worker IDs, so
	// an ID issued by an earlier daemon incarnation can never collide
	// with a fresh one: a stale worker's calls must 404 (forcing it to
	// re-register) rather than silently impersonate — and keep alive —
	// some new worker that happened to draw the same sequence number.
	epoch string

	mu      sync.Mutex
	closed  bool
	seq     int // worker ID counter
	workers map[string]*workerState
	tasks   map[string]*task // every queued-or-leased job by key
	pending []*task          // FIFO of unleased tasks
	// requeued counts leases taken back from dead or departing workers
	// and re-issued — the fleet's churn metric, served by /v1/workers.
	requeued uint64
	wake     chan struct{} // closed+replaced when pending grows
	done     chan struct{} // closed by Close; stops the reaper
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        string
	name      string
	capacity  int
	lastSeen  time.Time
	leased    map[string]*task
	completed uint64
}

// task is one dispatched job travelling through the queue.
type task struct {
	job      campaign.Job
	waiters  int    // Dispatch callers blocked on done
	leasedBy string // worker ID, "" while pending

	done chan struct{} // closed on completion or failure
	rec  campaign.Record
	err  error
}

// NewCoordinator returns a running coordinator and starts its reaper.
func NewCoordinator(cfg Config) *Coordinator {
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	epoch := make([]byte, 4)
	rand.Read(epoch)
	c := &Coordinator{
		ttl:     ttl,
		epoch:   hex.EncodeToString(epoch),
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*task),
		wake:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.reaper()
	return c
}

// LeaseTTL returns the worker-liveness horizon the coordinator enforces
// — the TTL the register response advertises to workers.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// Close shuts the queue down: every queued or leased task fails with
// ErrClosed (releasing its Dispatch callers), the reaper stops, and all
// later calls fail. The daemon closes the coordinator after draining,
// so no campaign is waiting by then in the normal path.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for key, t := range c.tasks {
		t.err = ErrClosed
		close(t.done)
		delete(c.tasks, key)
	}
	c.pending = nil
	for _, w := range c.workers {
		clear(w.leased)
	}
	close(c.done)
}

// reaper periodically drops workers that missed their lease TTL and
// re-issues their jobs. Mutating calls also reap inline, so the ticker
// only matters when the coordinator is otherwise idle.
func (c *Coordinator) reaper() {
	interval := c.ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.mu.Lock()
			c.reapLocked()
			c.mu.Unlock()
		case <-c.done:
			return
		}
	}
}

// reapLocked drops every worker unseen for a lease TTL, re-queues its
// leased tasks, and — when that leaves no live worker at all — fails
// everything still queued with ErrNoWorkers so dispatchers can fall
// back to local simulation instead of waiting for a fleet that is gone.
// The caller holds c.mu.
func (c *Coordinator) reapLocked() {
	if c.closed {
		return
	}
	now := time.Now()
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.ttl {
			continue
		}
		for key, t := range w.leased {
			t.leasedBy = ""
			c.requeued++
			c.pending = append(c.pending, t)
			delete(w.leased, key)
		}
		delete(c.workers, id)
	}
	if len(c.workers) == 0 && len(c.tasks) > 0 {
		for key, t := range c.tasks {
			t.err = ErrNoWorkers
			close(t.done)
			delete(c.tasks, key)
		}
		c.pending = c.pending[:0]
		return
	}
	if len(c.pending) > 0 {
		c.wakeLocked()
	}
}

// wakeLocked releases every Lease long-poller. The caller holds c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// Dispatch queues job j for the fleet and blocks until a worker posts
// its result (or failure). It returns ErrNoWorkers immediately when no
// live worker is registered, and ErrClosed once the coordinator shuts
// down. While the job is still *pending* — not yet leased — cancelling
// ctx withdraws it and returns ctx.Err(); once leased, Dispatch waits
// for the worker like an uninterruptible local run, so in-flight fleet
// work always lands in the store.
func (c *Coordinator) Dispatch(ctx context.Context, j campaign.Job) (campaign.Record, error) {
	key := j.Key()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return campaign.Record{}, ErrClosed
	}
	c.reapLocked()
	if len(c.workers) == 0 {
		c.mu.Unlock()
		return campaign.Record{}, ErrNoWorkers
	}
	t := c.tasks[key]
	if t == nil {
		t = &task{job: j, done: make(chan struct{})}
		c.tasks[key] = t
		c.pending = append(c.pending, t)
		c.wakeLocked()
	}
	t.waiters++
	c.mu.Unlock()

	select {
	case <-t.done:
		return t.rec, t.err
	case <-ctx.Done():
	}
	// Cancelled: withdraw the job if it is still pending and no one else
	// is waiting on it; a leased job is ridden to completion.
	c.mu.Lock()
	select {
	case <-t.done:
		c.mu.Unlock()
		return t.rec, t.err
	default:
	}
	t.waiters--
	if t.leasedBy == "" && t.waiters == 0 {
		delete(c.tasks, key)
		for i, p := range c.pending {
			if p == t {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return campaign.Record{}, ctx.Err()
	}
	if t.leasedBy == "" {
		// Another campaign still wants the job; leave it queued.
		c.mu.Unlock()
		return campaign.Record{}, ctx.Err()
	}
	c.mu.Unlock()
	<-t.done
	return t.rec, t.err
}

// LiveWorkers returns how many registered workers are within their
// lease TTL — the Router's remote-vs-local routing signal.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	return len(c.workers)
}

// Pending returns how many dispatched jobs no worker has leased yet.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Requeues returns how many leases have ever been taken back from dead
// or departing workers and re-issued — 0 on a healthy fleet, so the
// counter is a direct measure of worker churn.
func (c *Coordinator) Requeues() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requeued
}

// Register admits a worker to the fleet and returns its assigned state
// (ID, normalised capacity). Capacity <= 0 registers as 1.
func (c *Coordinator) Register(name string, capacity int) (WorkerStatus, error) {
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return WorkerStatus{}, ErrClosed
	}
	c.seq++
	w := &workerState{
		id:       fmt.Sprintf("w%06d-%s", c.seq, c.epoch),
		name:     name,
		capacity: capacity,
		lastSeen: time.Now(),
		leased:   make(map[string]*task),
	}
	c.workers[w.id] = w
	return w.status(), nil
}

// Deregister removes a worker cleanly (the SIGTERM-drain path): its
// remaining leases — a drained worker should have none — are re-queued
// immediately instead of waiting out the TTL.
func (c *Coordinator) Deregister(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	w := c.workers[workerID]
	if w == nil {
		return ErrUnknownWorker
	}
	for key, t := range w.leased {
		t.leasedBy = ""
		c.requeued++
		c.pending = append(c.pending, t)
		delete(w.leased, key)
	}
	delete(c.workers, workerID)
	c.reapLocked() // strand check: this may have been the last worker
	if len(c.pending) > 0 {
		c.wakeLocked()
	}
	return nil
}

// Lease hands the calling worker up to max pending jobs and records the
// call as a heartbeat (max 0 is a pure heartbeat). When nothing is
// pending it long-polls up to wait — capped at half the lease TTL so a
// parked worker still heartbeats — and returns an empty batch on
// timeout. Returns ErrUnknownWorker for IDs the coordinator dropped;
// the worker should re-register and retry.
func (c *Coordinator) Lease(workerID string, max int, wait time.Duration) ([]campaign.WireJob, error) {
	if wait > c.ttl/2 {
		wait = c.ttl / 2
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		c.reapLocked()
		w := c.workers[workerID]
		if w == nil {
			c.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		w.lastSeen = time.Now()
		if max <= 0 {
			c.mu.Unlock()
			return nil, nil
		}
		if len(c.pending) > 0 {
			n := min(max, len(c.pending))
			batch := make([]campaign.WireJob, 0, n)
			for _, t := range c.pending[:n] {
				t.leasedBy = workerID
				w.leased[t.job.Key()] = t
				batch = append(batch, t.job.Wire())
			}
			c.pending = append(c.pending[:0], c.pending[n:]...)
			c.mu.Unlock()
			return batch, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			c.mu.Unlock()
			return nil, nil
		}
		wake := c.wake
		c.mu.Unlock()
		timer := time.NewTimer(remaining)
		select {
		case <-wake:
		case <-timer.C:
		case <-c.done:
			timer.Stop()
			return nil, ErrClosed
		}
		timer.Stop()
	}
}

// JobFailure is a worker-reported per-job failure: the job's key and
// the simulator's error message. The coordinator fails the waiting
// campaign with it — simulator errors are deterministic, so re-issuing
// the job to another worker would only fail again.
type JobFailure struct {
	// Key is the failed job's content hash (echoed from the lease).
	Key string `json:"key"`
	// Error is the worker-side failure message.
	Error string `json:"error"`
}

// Complete records a batch of finished jobs from a worker — successful
// records and failures alike — and releases their Dispatch callers. It
// also counts as a heartbeat. The first result for a key wins; results
// for unknown or already-completed keys are counted in duplicates and
// discarded (a re-issued job's late second result is byte-identical
// anyway, so nothing is lost). Returns ErrUnknownWorker for dropped
// workers — their results are discarded too, because their leases were
// already re-issued.
func (c *Coordinator) Complete(workerID string, recs []campaign.Record, fails []JobFailure) (accepted, duplicates int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, 0, ErrClosed
	}
	c.reapLocked()
	w := c.workers[workerID]
	if w == nil {
		return 0, 0, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	settle := func(key string, rec campaign.Record, failure error) {
		t := c.tasks[key]
		if t == nil {
			duplicates++
			return
		}
		t.rec, t.err = rec, failure
		close(t.done)
		delete(c.tasks, key)
		if t.leasedBy != "" {
			if owner := c.workers[t.leasedBy]; owner != nil {
				delete(owner.leased, key)
			}
		} else {
			// Completed while queued for re-issue: drop it from pending
			// so no other worker leases a settled job.
			for i, p := range c.pending {
				if p == t {
					c.pending = append(c.pending[:i], c.pending[i+1:]...)
					break
				}
			}
		}
		accepted++
		if failure == nil {
			w.completed++
		}
	}
	for _, rec := range recs {
		settle(rec.Key, rec, nil)
	}
	for _, f := range fails {
		settle(f.Key, campaign.Record{}, fmt.Errorf("cluster: worker %s: %s", workerID, f.Error))
	}
	return accepted, duplicates, nil
}

// WorkerStatus is the wire form of one fleet member, served by the
// daemon's GET /v1/workers endpoint.
type WorkerStatus struct {
	// ID is the coordinator-assigned worker identity — a sequence
	// number plus the coordinator's random epoch tag
	// ("w000001-1a2b3c4d"), so IDs from a previous daemon incarnation
	// never resolve.
	ID string `json:"id"`
	// Name is the worker's self-reported label (its -name flag).
	Name string `json:"name"`
	// Capacity is how many simulations the worker runs in parallel.
	Capacity int `json:"capacity"`
	// Leased is how many jobs the worker currently holds.
	Leased int `json:"leased"`
	// Completed counts jobs this worker finished successfully.
	Completed uint64 `json:"completed"`
	// LastSeen is the worker's most recent heartbeat.
	LastSeen time.Time `json:"last_seen"`
}

func (w *workerState) status() WorkerStatus {
	return WorkerStatus{
		ID: w.id, Name: w.name, Capacity: w.capacity,
		Leased: len(w.leased), Completed: w.completed, LastSeen: w.lastSeen,
	}
}

// Workers snapshots the live fleet, sorted by worker ID.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
