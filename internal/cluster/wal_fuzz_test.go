package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
)

// FuzzWALReplay throws arbitrary bytes at the recovery path, as both
// snapshot and tail. The invariants under fuzzing:
//
//   - openWAL never panics: it either refuses with an error (corrupt
//     snapshot, mid-file tail corruption) or repairs and loads;
//   - a successful load is stable: the repair truncated any torn
//     fragment, so booting again from the same directory must succeed
//     and recover the identical state — replay is deterministic.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	jobs, err := campaign.Spec{
		Workloads: []string{"2W1"}, Policies: []string{"ICOUNT", "MFLUSH"}, Seeds: []uint64{1}, Cycles: 1000,
	}.Jobs()
	if err != nil {
		f.Fatal(err)
	}
	marshal := func(recs ...walRecord) []byte {
		var out []byte
		for _, r := range recs {
			line, err := json.Marshal(r)
			if err != nil {
				f.Fatal(err)
			}
			out = append(out, line...)
			out = append(out, '\n')
		}
		return out
	}
	wireA, wireB := jobs[0].Wire(), jobs[1].Wire()
	full := marshal(
		walRecord{Op: opEnqueue, Job: &wireA},
		walRecord{Op: opEnqueue, Job: &wireB},
		walRecord{Op: opLease, Key: wireB.Key, Worker: "w-1"},
	)
	f.Add(marshal(walRecord{Op: opEnqueue, Job: &wireA}), full)
	f.Add(full, full[:len(full)-7]) // torn tail: mid-record kill
	f.Add([]byte("{\n"), []byte(nil))
	f.Add([]byte(nil), []byte("not json\n{\"op\":\"bogus\"}\n"))

	f.Fuzz(func(t *testing.T, snap, tail []byte) {
		dir := t.TempDir()
		if len(snap) > 0 {
			if err := os.WriteFile(filepath.Join(dir, snapFile), snap, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, walFile), tail, 0o644); err != nil {
			t.Fatal(err)
		}
		w, st, err := openWAL(dir)
		if err != nil {
			return // refused, with a precise error — acceptable for arbitrary bytes
		}
		w.close()
		w2, st2, err := openWAL(dir)
		if err != nil {
			t.Fatalf("load succeeded but the repaired log failed to reopen: %v", err)
		}
		w2.close()
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("replay is not deterministic:\nfirst  %+v\nsecond %+v", st, st2)
		}
	})
}
