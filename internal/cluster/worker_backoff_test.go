package cluster

import (
	"testing"
	"time"
)

func TestRetryDelayBackoffJitterAndReset(t *testing.T) {
	var r retryDelay
	prev := time.Duration(0)
	for i := 0; i < 12; i++ {
		d := r.next()
		base := r.d
		if d < base/2 || d > base {
			t.Fatalf("step %d: delay %s outside jitter window [%s, %s]", i, d, base/2, base)
		}
		if base < prev {
			t.Fatalf("step %d: backoff shrank from %s to %s", i, prev, base)
		}
		prev = base
	}
	if r.d != 10*time.Second {
		t.Fatalf("backoff cap = %s, want 10s", r.d)
	}
	r.reset()
	if d := r.next(); d > 250*time.Millisecond {
		t.Fatalf("first delay after reset = %s, want <= 250ms", d)
	}
}
