package cluster

import (
	"time"

	"repro/internal/metrics"
)

// Coordinator-side observability. RegisterMetrics publishes the fleet's
// state into a metrics.Registry — the daemon calls it once at boot so
// its /metrics endpoint covers the cluster layer. Point-in-time facts
// (fleet size, queue depth, lease age) are scrape-time functions reading
// under the coordinator lock; event counts are plain uint64 fields
// bumped where the event happens and exposed through CounterFuncs; WAL
// latencies are histograms observed on the append/fsync/compact paths
// themselves.
//
// Lock discipline: scrape-time functions take c.mu while holding their
// own family's lock, and update paths under c.mu only touch lock-free
// metric atomics or resolve children of families that have no
// functions — so the two lock orders never form a cycle. Keep it that
// way: never Bind or register a function-backed metric while holding
// c.mu.

// perWorkerMetrics are the coordinator's per-worker gauge families,
// labeled by worker ID and self-reported name. Children are updated on
// every heartbeat and deleted when the worker leaves the fleet (clean
// deregister or TTL reap), so the exposition tracks the live fleet.
type perWorkerMetrics struct {
	leased    *metrics.GaugeVec
	completed *metrics.GaugeVec
	jobsDone  *metrics.GaugeVec
	cycles    *metrics.GaugeVec
}

// update publishes one worker's current state. The caller holds c.mu.
func (pm *perWorkerMetrics) update(w *workerState) {
	if pm == nil {
		return
	}
	pm.leased.WithLabelValues(w.id, w.name).Set(float64(len(w.leased)))
	pm.completed.WithLabelValues(w.id, w.name).Set(float64(w.completed))
	pm.jobsDone.WithLabelValues(w.id, w.name).Set(float64(w.jobsDone))
	pm.cycles.WithLabelValues(w.id, w.name).Set(w.cyclesPerSec)
}

// remove drops one worker's series. The caller holds c.mu.
func (pm *perWorkerMetrics) remove(w *workerState) {
	if pm == nil {
		return
	}
	pm.leased.Delete(w.id, w.name)
	pm.completed.Delete(w.id, w.name)
	pm.jobsDone.Delete(w.id, w.name)
	pm.cycles.Delete(w.id, w.name)
}

// RegisterMetrics publishes the coordinator's observability surface into
// r. Call it once, after OpenCoordinator/NewCoordinator and before the
// first scrape; registering the same coordinator into two registries is
// not supported (the per-worker and WAL handles are singletons).
func (c *Coordinator) RegisterMetrics(r *metrics.Registry) {
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("mflush_fleet_workers", "Registered workers within their lease TTL.",
		locked(func() float64 { return float64(len(c.workers)) }))
	r.GaugeFunc("mflush_fleet_pending_jobs", "Dispatched jobs no worker has leased yet.",
		locked(func() float64 { return float64(len(c.pending)) }))
	r.GaugeFunc("mflush_fleet_lease_age_seconds", "Age of the oldest outstanding lease.",
		locked(func() float64 {
			var max float64
			now := time.Now()
			for _, t := range c.tasks {
				if t.leasedBy == "" {
					continue
				}
				if age := now.Sub(t.leasedAt).Seconds(); age > max {
					max = age
				}
			}
			return max
		}))
	r.GaugeFunc("mflush_heartbeat_lag_seconds", "Longest silence of any live worker since its last heartbeat.",
		locked(func() float64 {
			var max float64
			now := time.Now()
			for _, w := range c.workers {
				if lag := now.Sub(w.lastSeen).Seconds(); lag > max {
					max = lag
				}
			}
			return max
		}))
	r.CounterFunc("mflush_leases_issued_total", "Job leases ever granted to workers.",
		locked(func() float64 { return float64(c.leasesIssued) }))
	r.CounterFunc("mflush_leases_expired_total", "Leases taken back from workers that missed their TTL.",
		locked(func() float64 { return float64(c.leasesExpired) }))
	r.CounterFunc("mflush_leases_forfeited_total", "Leases forfeited by departing workers or a dead daemon incarnation.",
		locked(func() float64 { return float64(c.leasesForfeited) }))

	// Recovery is a boot-time fact: set once from what the WAL replay
	// restored (all zero for an in-memory coordinator or a fresh state
	// directory).
	r.Gauge("mflush_recovered_jobs", "Unfinished jobs re-queued from the WAL at the last boot.").
		Set(float64(len(c.recovery.Jobs)))
	r.Gauge("mflush_recovered_orphan_results", "Acknowledged results carried over from the WAL at the last boot.").
		Set(float64(len(c.recovery.Orphans)))
	r.Gauge("mflush_recovered_forfeited_leases", "Dead-incarnation leases forfeited during the last boot's WAL replay.").
		Set(float64(len(c.recovery.Forfeited)))

	pm := &perWorkerMetrics{
		leased:    r.GaugeVec("mflush_fleet_worker_leased", "Jobs currently leased, per worker.", "worker", "name"),
		completed: r.GaugeVec("mflush_fleet_worker_completed", "Jobs settled successfully via this worker.", "worker", "name"),
		jobsDone:  r.GaugeVec("mflush_fleet_worker_jobs_done", "Worker's self-reported lifetime finished-job count.", "worker", "name"),
		cycles:    r.GaugeVec("mflush_fleet_worker_cycles_per_sec", "Worker's self-reported simulation rate (cycles/s of its last job).", "worker", "name"),
	}

	c.mu.Lock()
	c.pm = pm
	for _, w := range c.workers {
		pm.update(w)
	}
	if c.wal != nil {
		c.wal.appendH = r.Histogram("mflush_wal_append_seconds", "WAL tail append latency (write, excluding fsync).", metrics.DefBuckets)
		c.wal.fsyncH = r.Histogram("mflush_wal_fsync_seconds", "WAL tail fsync latency.", metrics.DefBuckets)
		c.wal.compactH = r.Histogram("mflush_wal_compact_seconds", "WAL compaction latency (snapshot write, rename, tail truncate).", metrics.DefBuckets)
		c.wal.compactions = r.Counter("mflush_wal_compactions_total", "WAL compactions performed.")
	}
	c.mu.Unlock()
}
