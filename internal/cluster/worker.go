package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Worker is the fleet member: a pull loop over a coordinator daemon's
// /v1/workers HTTP endpoints. It registers, leases jobs up to its
// capacity, simulates them on a local goroutine pool, posts results as
// they finish, and heartbeats while busy. Cancelling the Run context
// drains: no new leases, in-flight simulations finish and post, then
// the worker deregisters — the SIGTERM path of cmd/mflushworker. If the
// coordinator drops the worker (missed heartbeats, daemon restart) the
// loop re-registers under a fresh ID and carries on.
type Worker struct {
	// Base is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	Base string
	// Name labels the worker in fleet listings; defaults to "worker".
	Name string
	// Capacity bounds parallel simulations (<= 0: 1).
	Capacity int
	// Runner executes one simulation; nil means sim.Run. Tests inject
	// counting or blocking runners.
	Runner func(sim.Options) (*sim.Result, error)
	// GangWidth, when at least 2, batches gang-compatible jobs from one
	// lease (equal campaign GangKey: one workload, window and machine
	// point) into lockstep gangs of up to that many members, executed by
	// one GangRunner call on one goroutine. Records posted back are
	// byte-identical to solo execution (test-enforced); ganging only
	// changes how the leased work is scheduled locally.
	GangWidth int
	// GangRunner executes one lockstep batch; nil means sim.RunGang.
	GangRunner func([]sim.Options) ([]*sim.Result, error)
	// Client issues the HTTP calls; nil means http.DefaultClient.
	Client *http.Client
	// LeaseWait is the long-poll duration for an empty queue (<= 0: 2s).
	LeaseWait time.Duration
	// Logf, when set, receives one line per lifecycle event and job.
	Logf func(format string, args ...any)

	// m holds the worker's own metric handles (RegisterMetrics). The
	// zero value works: nil metric receivers are no-ops.
	m workerMetrics
}

// workerMetrics is the worker-process observability surface, served by
// cmd/mflushworker's -metrics-addr endpoint.
type workerMetrics struct {
	jobsCompleted *metrics.Counter
	jobsFailed    *metrics.Counter
	simCycles     *metrics.Counter
	cyclesPerSec  *metrics.Gauge
	inflight      *metrics.Gauge
	backoff       *metrics.Gauge
}

// RegisterMetrics publishes the worker's metrics into r: lifetime
// completed/failed job counters, total simulated cycles, the rate of
// the last successful job, current in-flight simulations, and the pull
// loop's current retry backoff (0 while the coordinator is healthy).
// Call before Run.
func (w *Worker) RegisterMetrics(r *metrics.Registry) {
	w.m = workerMetrics{
		jobsCompleted: r.Counter("mflush_worker_jobs_completed_total", "Jobs this worker finished successfully."),
		jobsFailed:    r.Counter("mflush_worker_jobs_failed_total", "Jobs whose simulation errored on this worker."),
		simCycles:     r.Counter("mflush_worker_sim_cycles_total", "Simulated cycles (warmup included) across all completed jobs."),
		cyclesPerSec:  r.Gauge("mflush_worker_cycles_per_sec", "Simulation rate of the most recent successful job."),
		inflight:      r.Gauge("mflush_worker_inflight", "Simulations currently running."),
		backoff:       r.Gauge("mflush_worker_backoff_seconds", "Current pull-loop retry backoff; 0 while the coordinator is reachable."),
	}
}

// outcome is one finished job travelling from a simulation goroutine
// back to the posting loop, with the liveness detail the next heartbeat
// reports.
type outcome struct {
	rec  campaign.Record
	fail *JobFailure
	// key is the job's content hash, set for success and failure alike.
	key string
	// cycles and secs describe a successful simulation: cycles executed
	// (warmup included) over wall-clock seconds.
	cycles float64
	secs   float64
}

// retryDelay paces the pull loop's retries against an unreachable or
// unconverged coordinator: capped exponential backoff (250ms doubling
// to 10s) with jitter on the upper half of each step, so a fleet
// restarted together does not hammer a recovering daemon in lockstep.
// reset after any success, so an isolated hiccup stays cheap. The
// optional gauge mirrors the current step so a stuck worker's backoff
// state is visible on its /metrics endpoint.
type retryDelay struct {
	d time.Duration
	g *metrics.Gauge
}

// next returns the delay to sleep before the following attempt.
func (r *retryDelay) next() time.Duration {
	if r.d == 0 {
		r.d = 250 * time.Millisecond
	} else if r.d *= 2; r.d > 10*time.Second {
		r.d = 10 * time.Second
	}
	half := r.d / 2
	d := half + rand.N(half+1)
	r.g.Set(d.Seconds())
	return d
}

// reset returns the backoff to its initial step.
func (r *retryDelay) reset() {
	r.d = 0
	r.g.Set(0)
}

// Run executes the pull loop until ctx is cancelled, then drains and
// deregisters. Registration retries with capped jittered backoff for as
// long as ctx lives, so starting the worker before the daemon is
// reachable is fine; the only error Run returns is a cancellation that
// arrives before any registration ever succeeded.
func (w *Worker) Run(ctx context.Context) error {
	capacity := w.Capacity
	if capacity <= 0 {
		capacity = 1
	}
	name := w.Name
	if name == "" {
		name = "worker"
	}
	runner := w.Runner
	if runner == nil {
		runner = sim.Run
	}
	leaseWait := w.LeaseWait
	if leaseWait <= 0 {
		leaseWait = 2 * time.Second
	}

	// Register with backoff: a worker started before its daemon is up
	// (or while it is replaying a WAL after a crash) keeps knocking and
	// joins the fleet on its own once the daemon converges. Only a
	// cancellation before any registration succeeds returns an error.
	retry := retryDelay{g: w.m.backoff}
	id, ttl, err := w.register(ctx, name, capacity)
	for err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("cluster: worker register: %w", err)
		}
		d := retry.next()
		w.logf("register: %v (retrying in %s)", err, d.Round(time.Millisecond))
		w.sleep(ctx, d)
		id, ttl, err = w.register(ctx, name, capacity)
	}
	retry.reset()
	w.logf("registered as %s (capacity %d, lease TTL %s)", id, capacity, ttl)

	heartbeat := time.NewTicker(ttl / 3)
	defer heartbeat.Stop()
	results := make(chan outcome, capacity)
	inflight := 0
	// live is the liveness detail every lease/heartbeat call reports:
	// lifetime counters, so they survive re-registration.
	var live Liveness

	// reregister obtains a fresh identity after the coordinator forgot
	// us (it restarted, or we missed heartbeats) and adopts the whole
	// contract — the TTL may have changed with it, so the heartbeat
	// cadence must follow or a now-shorter TTL would drop us after
	// every heartbeat.
	reregister := func(rctx context.Context) bool {
		newID, newTTL, err := w.register(rctx, name, capacity)
		if err != nil {
			return false
		}
		w.logf("re-registered as %s (lease TTL %s)", newID, newTTL)
		id, ttl = newID, newTTL
		heartbeat.Reset(ttl / 3)
		return true
	}

	// post ships one outcome, retrying transient failures and
	// re-registering when the coordinator forgot us. It must not drop a
	// result while the coordinator still counts us alive: our ongoing
	// heartbeats would keep the job leased to us forever and wedge its
	// campaign. So after the retries are spent, we abandon our identity
	// (best-effort deregister, then re-register fresh) — re-queueing
	// every lease we hold so another worker re-runs the job. It runs on
	// its own bounded context, not the Run ctx: results computed before
	// a drain began must still be delivered after it.
	post := func(o outcome) {
		postCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		req := ResultsRequest{}
		if o.fail != nil {
			req.Failures = []JobFailure{*o.fail}
		} else {
			req.Records = []campaign.Record{o.rec}
		}
		var resp ResultsResponse
		for attempt, backoff := 0, 100*time.Millisecond; attempt < 4; attempt, backoff = attempt+1, backoff*2 {
			err := w.call(postCtx, "POST", "/v1/workers/"+id+"/results", req, &resp)
			if err == nil {
				return
			}
			if isUnknownWorker(err) {
				// Our leases were already re-queued with our old identity;
				// the result is only a harmless duplicate now, but deliver
				// it if a fresh registration succeeds.
				if !reregister(postCtx) {
					return
				}
				continue
			}
			w.logf("post attempt %d: %v", attempt+1, err)
			w.sleep(postCtx, backoff)
		}
		// Undeliverable while still registered: abandon the identity so
		// the coordinator re-queues our leases instead of trusting us.
		w.logf("abandoning identity %s: result undeliverable, leases must be re-issued", id)
		_ = w.call(postCtx, "DELETE", "/v1/workers/"+id, nil, nil)
		reregister(postCtx)
	}
	gangRunner := w.GangRunner
	if gangRunner == nil {
		gangRunner = sim.RunGang
	}
	start := func(wire campaign.WireJob) {
		inflight++
		w.m.inflight.Set(float64(inflight))
		go func() {
			j, err := wire.Job()
			if err == nil && j.Key() != wire.Key {
				err = fmt.Errorf("cluster: job key mismatch (worker and coordinator builds differ?): computed %s, leased %s", j.Key(), wire.Key)
			}
			if err != nil {
				results <- outcome{fail: &JobFailure{Key: wire.Key, Error: err.Error()}, key: wire.Key}
				return
			}
			o, err := j.SimOptions()
			if err != nil {
				// A trace job whose file is missing or drifted on this
				// worker's filesystem fails here, before simulating.
				results <- outcome{fail: &JobFailure{Key: wire.Key, Error: err.Error()}, key: wire.Key}
				return
			}
			began := time.Now()
			res, err := runner(o)
			if err != nil {
				results <- outcome{fail: &JobFailure{Key: wire.Key, Error: err.Error()}, key: wire.Key}
				return
			}
			results <- outcome{
				rec:    campaign.NewRecord(j, res),
				key:    wire.Key,
				cycles: float64(j.Cycles + j.Warmup),
				secs:   time.Since(began).Seconds(),
			}
		}()
	}
	// startGang launches one lockstep batch of pre-decoded jobs on one
	// goroutine: one gang simulation, one posted outcome per member. The
	// gang's wall-clock is shared by all members, so it is attributed
	// evenly to keep the per-job rate metrics meaningful.
	startGang := func(batch []campaign.WireJob, gjobs []campaign.Job) {
		inflight += len(batch)
		w.m.inflight.Set(float64(inflight))
		go func() {
			opts := make([]sim.Options, len(gjobs))
			for k, j := range gjobs {
				o, err := j.SimOptions()
				if err != nil {
					// Members share one GangKey, hence one trace file:
					// a load failure fails the batch together.
					for _, wire := range batch {
						results <- outcome{fail: &JobFailure{Key: wire.Key, Error: err.Error()}, key: wire.Key}
					}
					return
				}
				opts[k] = o
			}
			began := time.Now()
			res, err := gangRunner(opts)
			if err != nil {
				// The lockstep failed before producing any member's
				// result: the batch fails together.
				for _, wire := range batch {
					results <- outcome{fail: &JobFailure{Key: wire.Key, Error: err.Error()}, key: wire.Key}
				}
				return
			}
			secs := time.Since(began).Seconds() / float64(len(batch))
			for k, j := range gjobs {
				results <- outcome{
					rec:    campaign.NewRecord(j, res[k]),
					key:    batch[k].Key,
					cycles: float64(j.Cycles + j.Warmup),
					secs:   secs,
				}
			}
		}()
	}
	// startBatch dispatches one lease's worth of jobs, gang-batching
	// compatible ones when GangWidth allows. Wires that do not decode
	// (or whose key does not round-trip) never join a gang: they go
	// through the solo path, which produces the detailed failure.
	startBatch := func(wires []campaign.WireJob) {
		if w.GangWidth < 2 || len(wires) < 2 {
			for _, wire := range wires {
				start(wire)
			}
			return
		}
		var good []campaign.WireJob
		var goodJobs []campaign.Job
		for _, wire := range wires {
			j, err := wire.Job()
			if err != nil || j.Key() != wire.Key {
				start(wire)
				continue
			}
			good = append(good, wire)
			goodJobs = append(goodJobs, j)
		}
		for _, group := range campaign.GangGroups(goodJobs, w.GangWidth) {
			if len(group) == 1 {
				start(good[group[0]])
				continue
			}
			batch := make([]campaign.WireJob, len(group))
			gjobs := make([]campaign.Job, len(group))
			for k, gi := range group {
				batch[k], gjobs[k] = good[gi], goodJobs[gi]
			}
			w.logf("gang of %d (%s ...)", len(batch), batch[0].Key)
			startGang(batch, gjobs)
		}
	}
	// finish books one completed outcome — liveness for the next
	// heartbeat, the worker's own metrics — then ships it.
	finish := func(o outcome) {
		inflight--
		w.m.inflight.Set(float64(inflight))
		live.LastJobKey = o.key
		live.JobsDone++
		if o.fail != nil {
			w.m.jobsFailed.Inc()
		} else {
			w.m.jobsCompleted.Inc()
			w.m.simCycles.Add(uint64(o.cycles))
			if o.secs > 0 {
				live.CyclesPerSec = o.cycles / o.secs
				w.m.cyclesPerSec.Set(live.CyclesPerSec)
			}
		}
		post(o)
	}

	for ctx.Err() == nil {
		// Ship everything already finished before asking for more work.
		for drained := false; !drained; {
			select {
			case o := <-results:
				finish(o)
			default:
				drained = true
			}
		}
		if free := capacity - inflight; free > 0 {
			// With work in flight, keep the poll short: a completion
			// sitting in the results channel must not wait out a long
			// poll before it is posted (campaign tails would pay up to
			// LeaseWait of latency per job otherwise).
			wait := leaseWait
			if inflight > 0 && wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			jobs, err := w.lease(ctx, id, free, wait, live)
			if isUnknownWorker(err) {
				if !reregister(ctx) {
					w.sleep(ctx, retry.next())
				} else {
					retry.reset()
				}
				continue
			}
			if err != nil {
				if ctx.Err() == nil {
					d := retry.next()
					w.logf("lease: %v (retrying in %s)", err, d.Round(time.Millisecond))
					w.sleep(ctx, d)
				}
				continue
			}
			retry.reset()
			for _, wire := range jobs {
				w.logf("leased %s", wire.Key)
			}
			startBatch(jobs)
			continue
		}
		// Full: wait for a completion, heartbeating so long simulations
		// do not get our leases re-issued under us.
		select {
		case o := <-results:
			finish(o)
		case <-heartbeat.C:
			if _, err := w.lease(ctx, id, 0, 0, live); isUnknownWorker(err) {
				reregister(ctx)
			}
		case <-ctx.Done():
		}
	}

	// Drain: in-flight simulations finish and post, then deregister.
	// The Run ctx is gone, so drain-side HTTP runs on its own context —
	// and the heartbeat keeps going: a drain longer than the lease TTL
	// must not get our leases reaped and re-run elsewhere while we are
	// still finishing them.
	w.logf("draining (%d in flight)", inflight)
	drainCtx := context.Background()
	for inflight > 0 {
		select {
		case o := <-results:
			finish(o)
		case <-heartbeat.C:
			if _, err := w.lease(drainCtx, id, 0, 0, live); isUnknownWorker(err) {
				reregister(drainCtx)
			}
		}
	}
	if err := w.call(drainCtx, "DELETE", "/v1/workers/"+id, nil, nil); err != nil && !isUnknownWorker(err) {
		w.logf("deregister: %v", err)
	}
	w.logf("drained")
	return nil
}

// register obtains a worker identity, retrying is the caller's concern.
func (w *Worker) register(ctx context.Context, name string, capacity int) (id string, ttl time.Duration, err error) {
	var resp RegisterResponse
	err = w.call(ctx, "POST", "/v1/workers", RegisterRequest{Name: name, Capacity: capacity}, &resp)
	if err != nil {
		return "", 0, err
	}
	ttl = time.Duration(resp.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return resp.ID, ttl, nil
}

// lease asks for up to max jobs, long-polling wait; max 0 heartbeats.
// Every call carries the worker's current liveness detail.
func (w *Worker) lease(ctx context.Context, id string, max int, wait time.Duration, live Liveness) ([]campaign.WireJob, error) {
	var resp LeaseResponse
	err := w.call(ctx, "POST", "/v1/workers/"+id+"/lease",
		LeaseRequest{
			Max: max, WaitMS: wait.Milliseconds(),
			LastJobKey: live.LastJobKey, JobsDone: live.JobsDone, CyclesPerSec: live.CyclesPerSec,
		}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// statusError is a non-2xx daemon response: the status code plus the
// error envelope's message.
type statusError struct {
	code int
	msg  string
}

// Error renders the daemon's message with its status code.
func (e *statusError) Error() string { return fmt.Sprintf("%d: %s", e.code, e.msg) }

// isUnknownWorker reports the coordinator having dropped our ID (404).
func isUnknownWorker(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.code == http.StatusNotFound
}

// call issues one JSON request against the coordinator. The drain path
// passes a background ctx so final posts are not cut short; everything
// else uses the Run ctx.
func (w *Worker) call(ctx context.Context, method, path string, body, out any) error {
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.Base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var envelope struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		return &statusError{code: resp.StatusCode, msg: envelope.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits d or until ctx cancels, whichever is first.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// logf routes through Logf when set.
func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}
