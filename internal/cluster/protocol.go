package cluster

import "repro/internal/campaign"

// The /v1/workers wire schemas, shared by the daemon's handlers
// (internal/server) and the Worker client so the two sides cannot
// drift. API.md documents them field by field.

// RegisterRequest is the POST /v1/workers body.
type RegisterRequest struct {
	// Name labels the worker in fleet listings (e.g. its hostname).
	Name string `json:"name"`
	// Capacity is how many simulations the worker runs in parallel.
	Capacity int `json:"capacity"`
}

// RegisterResponse is the 201 body: the worker's assigned identity and
// the heartbeat contract it must honour.
type RegisterResponse struct {
	// ID is the coordinator-assigned worker ID, used in all later calls.
	ID string `json:"id"`
	// LeaseTTLMS is the lease TTL in milliseconds: a worker silent for
	// this long is dropped and its leased jobs re-issued.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// LeaseRequest is the POST /v1/workers/{id}/lease body. Beyond the
// batch parameters it carries the worker's liveness detail — every
// lease call doubles as a heartbeat, so the payload keeps the fleet
// view (GET /v1/workers, the daemon's per-worker metrics) current
// without any extra round trip.
type LeaseRequest struct {
	// Max bounds the batch; 0 makes the call a pure heartbeat.
	Max int `json:"max"`
	// WaitMS long-polls for work up to this many milliseconds (capped
	// by the coordinator at half the lease TTL).
	WaitMS int64 `json:"wait_ms,omitempty"`
	// LastJobKey is the most recent job the worker finished, if any.
	LastJobKey string `json:"last_job_key,omitempty"`
	// JobsDone is the worker's lifetime finished-job count (it survives
	// re-registration).
	JobsDone uint64 `json:"jobs_done,omitempty"`
	// CyclesPerSec is the simulation rate of the worker's most recent
	// successful job.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// LeaseResponse is the lease body: the leased batch, possibly empty.
type LeaseResponse struct {
	// Jobs are the leased jobs in queue order.
	Jobs []campaign.WireJob `json:"jobs"`
}

// ResultsRequest is the POST /v1/workers/{id}/results body.
type ResultsRequest struct {
	// Records are completed jobs' full store records.
	Records []campaign.Record `json:"records,omitempty"`
	// Failures are jobs whose simulation errored on the worker.
	Failures []JobFailure `json:"failures,omitempty"`
}

// ResultsResponse acknowledges a results post.
type ResultsResponse struct {
	// Accepted counts results that settled a queued job.
	Accepted int `json:"accepted"`
	// Duplicates counts results for unknown or already-settled keys,
	// discarded (harmlessly — results are deterministic).
	Duplicates int `json:"duplicates"`
}

// FleetResponse is the GET /v1/workers body.
type FleetResponse struct {
	// Workers lists the live fleet sorted by worker ID.
	Workers []WorkerStatus `json:"workers"`
	// Pending is how many dispatched jobs await a lease.
	Pending int `json:"pending"`
	// Requeues counts leases ever re-issued from dead or departing
	// workers — the fleet's churn metric (0 on a healthy fleet).
	Requeues uint64 `json:"requeues"`
}
