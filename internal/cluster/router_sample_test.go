package cluster

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/workload"
)

// TestRouterLocalOnSample: a sampled job simulated by the router's local
// fallback streams its interval points through OnSample, keyed by the
// job's content hash, and the record still carries the full series.
func TestRouterLocalOnSample(t *testing.T) {
	w, _ := workload.ByName("2W1")
	j := campaign.Job{Workload: w, Policy: sim.SpecICOUNT, Seed: 1, Cycles: 1000, Interval: 250}

	r := NewRouter(nil, 1, simtest.New().Run)
	var keys []string
	var points []sim.SamplePoint
	r.OnSample = func(key string, p sim.SamplePoint) {
		keys = append(keys, key)
		points = append(points, p)
	}
	rec, err := r.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("streamed %d live samples, want 4", len(points))
	}
	for i, k := range keys {
		if k != j.Key() {
			t.Fatalf("sample %d keyed %s, want %s", i, k, j.Key())
		}
	}
	if got := len(rec.Summary.IntervalSamples); got != 4 {
		t.Fatalf("record carries %d samples, want 4", got)
	}

	// An interval-less job must not touch the hook.
	points = points[:0]
	j.Interval = 0
	if _, err := r.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatalf("unsampled job streamed %d samples", len(points))
	}
}
