package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/simtest"
)

// testJobs expands a small campaign for queue tests.
func testJobs(t *testing.T, seeds ...uint64) []campaign.Job {
	t.Helper()
	jobs, err := campaign.Spec{
		Workloads: []string{"2W1"},
		Policies:  []string{"ICOUNT", "MFLUSH"},
		Seeds:     seeds,
		Cycles:    1000,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// testRecord fabricates the record a worker would post for j.
func testRecord(t *testing.T, j campaign.Job) campaign.Record {
	t.Helper()
	res, err := simtest.New().Run(j.Options())
	if err != nil {
		t.Fatal(err)
	}
	return campaign.NewRecord(j, res)
}

func newTestCoordinator(t *testing.T, ttl time.Duration) *Coordinator {
	t.Helper()
	c := NewCoordinator(Config{LeaseTTL: ttl})
	t.Cleanup(c.Close)
	return c
}

func TestDispatchLeaseCompleteRoundTrip(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	w, err := c.Register("w1", 4)
	if err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]

	type result struct {
		rec campaign.Record
		err error
	}
	done := make(chan result, 1)
	go func() {
		rec, err := c.Dispatch(context.Background(), j)
		done <- result{rec, err}
	}()

	// The worker leases the job (long-polling across the dispatch race).
	batch, err := c.Lease(w.ID, 4, time.Second, Liveness{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].Key != j.Key() {
		t.Fatalf("lease = %+v, want the dispatched job", batch)
	}
	rec := testRecord(t, j)
	accepted, dups, err := c.Complete(w.ID, []campaign.Record{rec}, nil)
	if err != nil || accepted != 1 || dups != 0 {
		t.Fatalf("Complete = %d/%d, %v", accepted, dups, err)
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.rec.Key != j.Key() || r.rec.Summary.IPC != rec.Summary.IPC {
		t.Fatalf("dispatched record = %+v", r.rec)
	}
	// The worker's stats reflect the completion.
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Completed != 1 || ws[0].Leased != 0 {
		t.Fatalf("fleet after completion = %+v", ws)
	}
}

func TestDispatchWithoutWorkersFailsFast(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	if _, err := c.Dispatch(context.Background(), testJobs(t, 1)[0]); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("dispatch into empty fleet = %v, want ErrNoWorkers", err)
	}
}

// TestLeaseReissuedAfterWorkerDeath is the tentpole invariant at queue
// level: a worker that leases a job and then goes silent loses the
// lease after the TTL, and the job is re-issued to a live worker whose
// result completes the original dispatch.
func TestLeaseReissuedAfterWorkerDeath(t *testing.T) {
	const ttl = 150 * time.Millisecond
	c := newTestCoordinator(t, ttl)
	dead, err := c.Register("doomed", 1)
	if err != nil {
		t.Fatal(err)
	}
	live, err := c.Register("survivor", 1)
	if err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]

	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), j)
		done <- err
	}()

	// The doomed worker takes the job ... and is never heard from again.
	batch, err := c.Lease(dead.ID, 1, time.Second, Liveness{})
	if err != nil || len(batch) != 1 {
		t.Fatalf("doomed lease = %v, %v", batch, err)
	}

	// The survivor heartbeats and polls; after the TTL it receives the
	// re-issued job.
	var reissued []campaign.WireJob
	simtest.WaitFor(t, 10*time.Second, func() bool {
		reissued, err = c.Lease(live.ID, 1, 50*time.Millisecond, Liveness{})
		if err != nil {
			t.Fatal(err)
		}
		return len(reissued) > 0
	}, "lease never re-issued after worker death")
	if reissued[0].Key != j.Key() {
		t.Fatalf("re-issued job = %+v", reissued[0])
	}
	if _, _, err := c.Complete(live.ID, []campaign.Record{testRecord(t, j)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("dispatch after re-issue: %v", err)
	}

	// The dead worker's identity is gone; its late result is refused.
	if _, _, err := c.Complete(dead.ID, []campaign.Record{testRecord(t, j)}, nil); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("dead worker Complete = %v, want ErrUnknownWorker", err)
	}
}

// TestDuplicateResultDiscarded: the second result for a key settles
// nothing and is counted as a duplicate.
func TestDuplicateResultDiscarded(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	w, err := c.Register("w1", 2)
	if err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Dispatch(context.Background(), j)
	}()
	if _, err := c.Lease(w.ID, 1, time.Second, Liveness{}); err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t, j)
	if a, d, _ := c.Complete(w.ID, []campaign.Record{rec}, nil); a != 1 || d != 0 {
		t.Fatalf("first Complete = %d accepted, %d duplicates", a, d)
	}
	if a, d, _ := c.Complete(w.ID, []campaign.Record{rec}, nil); a != 0 || d != 1 {
		t.Fatalf("second Complete = %d accepted, %d duplicates", a, d)
	}
	<-done
}

// TestFleetDeathStrandsToErrNoWorkers: when the last worker dies with
// jobs queued or leased, every dispatcher is released with ErrNoWorkers
// (the Router's cue to fall back to local simulation) instead of
// waiting for a fleet that no longer exists.
func TestFleetDeathStrandsToErrNoWorkers(t *testing.T) {
	const ttl = 150 * time.Millisecond
	c := newTestCoordinator(t, ttl)
	w, err := c.Register("only", 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(t, 1) // two jobs: one leased, one still pending
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j campaign.Job) {
			_, err := c.Dispatch(context.Background(), j)
			errs <- err
		}(j)
	}
	if _, err := c.Lease(w.ID, 1, time.Second, Liveness{}); err != nil {
		t.Fatal(err)
	}
	// The only worker goes silent; both dispatchers must strand out.
	for i := 0; i < len(jobs); i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrNoWorkers) {
				t.Fatalf("stranded dispatch = %v, want ErrNoWorkers", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("dispatcher still waiting on a dead fleet")
		}
	}
}

// TestDispatchCancelledWhilePendingWithdraws: cancelling the dispatch
// context while the job is unleased removes it from the queue.
func TestDispatchCancelledWhilePendingWithdraws(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	if _, err := c.Register("idle", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(ctx, testJobs(t, 1)[0])
		done <- err
	}()
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pending dispatch = %v", err)
	}
	if c.Pending() != 0 {
		t.Fatalf("withdrawn job still pending (%d)", c.Pending())
	}
}

// TestDispatchRidesOutCancellationOnceLeased: once a worker holds the
// job, cancelling the dispatcher does not abandon it — like a local
// simulation, in-flight fleet work finishes and its record is returned.
func TestDispatchRidesOutCancellationOnceLeased(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	w, err := c.Register("w1", 1)
	if err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		rec campaign.Record
		err error
	}
	done := make(chan result, 1)
	go func() {
		rec, err := c.Dispatch(ctx, j)
		done <- result{rec, err}
	}()
	if _, err := c.Lease(w.ID, 1, time.Second, Liveness{}); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case r := <-done:
		t.Fatalf("dispatch returned %v before the leased job completed", r.err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, _, err := c.Complete(w.ID, []campaign.Record{testRecord(t, j)}, nil); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil || r.rec.Key != j.Key() {
		t.Fatalf("ridden-out dispatch = %+v, %v", r.rec, r.err)
	}
}

// TestWorkerFailurePropagates: a worker-side simulation error fails the
// waiting dispatch with the worker's message.
func TestWorkerFailurePropagates(t *testing.T) {
	c := newTestCoordinator(t, time.Minute)
	w, err := c.Register("w1", 1)
	if err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]
	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), j)
		done <- err
	}()
	if _, err := c.Lease(w.ID, 1, time.Second, Liveness{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Complete(w.ID, nil, []JobFailure{{Key: j.Key(), Error: "synthetic boom"}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "synthetic boom") {
		t.Fatalf("failed dispatch = %v", err)
	}
}

// TestCloseReleasesEverything: Close fails queued dispatches and all
// later calls.
func TestCloseReleasesEverything(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Minute})
	if _, err := c.Register("w1", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), testJobs(t, 1)[0])
		done <- err
	}()
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("dispatch across Close = %v", err)
	}
	if _, err := c.Register("late", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close = %v", err)
	}
	c.Close() // idempotent
}

// TestDeregisterReissuesImmediately: a clean deregister does not wait
// out the TTL before re-queueing the worker's leases.
func TestDeregisterReissuesImmediately(t *testing.T) {
	c := newTestCoordinator(t, time.Minute) // TTL long: re-issue must not depend on it
	leaver, err := c.Register("leaver", 1)
	if err != nil {
		t.Fatal(err)
	}
	stayer, err := c.Register("stayer", 1)
	if err != nil {
		t.Fatal(err)
	}
	j := testJobs(t, 1)[0]
	done := make(chan error, 1)
	go func() {
		_, err := c.Dispatch(context.Background(), j)
		done <- err
	}()
	if _, err := c.Lease(leaver.ID, 1, time.Second, Liveness{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(leaver.ID); err != nil {
		t.Fatal(err)
	}
	batch, err := c.Lease(stayer.ID, 1, time.Second, Liveness{})
	if err != nil || len(batch) != 1 || batch[0].Key != j.Key() {
		t.Fatalf("post-deregister lease = %+v, %v", batch, err)
	}
	if _, _, err := c.Complete(stayer.ID, []campaign.Record{testRecord(t, j)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerIDsNeverCollideAcrossCoordinators: IDs carry a random
// per-coordinator epoch, so an ID issued before a daemon restart can
// never resolve against the restarted coordinator — a stale worker
// must 404 and re-register, not impersonate (and keep alive) whichever
// new worker drew the same sequence number.
func TestWorkerIDsNeverCollideAcrossCoordinators(t *testing.T) {
	c1 := newTestCoordinator(t, time.Minute)
	c2 := newTestCoordinator(t, time.Minute)
	w1, err := c1.Register("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c2.Register("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1.ID == w2.ID {
		t.Fatalf("two coordinators issued the same worker ID %s", w1.ID)
	}
	if _, err := c2.Lease(w1.ID, 1, 0, Liveness{}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("stale-coordinator ID accepted by new coordinator: %v", err)
	}
}

// TestRouterFallsBackWithoutFleet: the router runs jobs locally when no
// coordinator is attached and when the fleet is empty.
func TestRouterFallsBackWithoutFleet(t *testing.T) {
	j := testJobs(t, 1)[0]
	for name, coord := range map[string]*Coordinator{
		"nil-coordinator": nil,
		"empty-fleet":     newTestCoordinator(t, time.Minute),
	} {
		r := simtest.New()
		router := NewRouter(coord, 2, r.Run)
		rec, err := router.Run(context.Background(), j)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Key != j.Key() || r.Total() != 1 {
			t.Fatalf("%s: rec=%+v local runs=%d", name, rec, r.Total())
		}
	}
}

// TestRouterLocalBoundHonoursContext: a job waiting for a local slot
// aborts when its campaign is cancelled.
func TestRouterLocalBoundHonoursContext(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	defer close(r.Gate)
	router := NewRouter(nil, 1, r.Run)
	jobs := testJobs(t, 1)
	go router.Run(context.Background(), jobs[0]) // occupies the only slot
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := router.Run(ctx, jobs[1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("slot wait under cancelled ctx = %v", err)
	}
}
