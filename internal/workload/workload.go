// Package workload encodes the paper's Figure 1 workload table: 5
// workloads at each of 4 sizes (2, 4, 6 and 8 threads), named xWy where x
// is the thread count and y the workload identifier, plus the bzip2/twolf
// mix used in the Figure 5(b) Detection Moment analysis.
//
// Each workload of size x runs on a CMP with x/2 two-context SMT cores.
package workload

import (
	"fmt"

	"repro/internal/synth"
)

// Workload is a named list of benchmark instances, one per hardware
// thread, in scheduling order: threads 2i and 2i+1 share core i.
type Workload struct {
	Name    string
	Letters string // one letter per thread, paper Figure 1 encoding
}

// table is the paper's Figure 1 workload matrix.
var table = []Workload{
	{"2W1", "bj"}, {"2W2", "ne"}, {"2W3", "da"}, {"2W4", "gf"}, {"2W5", "rp"},
	{"4W1", "bqtj"}, {"4W2", "lnpe"}, {"4W3", "dsra"}, {"4W4", "gbmf"}, {"4W5", "rjfp"},
	{"6W1", "lbqftj"}, {"6W2", "glnpea"}, {"6W3", "dlswra"}, {"6W4", "rgbmhf"}, {"6W5", "hlermd"},
	{"8W1", "dlbgijcf"}, {"8W2", "bgmnahop"}, {"8W3", "mnrqijeh"}, {"8W4", "lbgmnrfs"}, {"8W5", "qbckeaot"},
}

// BzipTwolf8 is the additional 8-thread workload of Figure 5(b): instances
// of bzip2 and twolf arranged so the two applications never share a core.
var BzipTwolf8 = Workload{Name: "8W-bzip2-twolf", Letters: "kkllkkll"}

// All returns the 20 Figure 1 workloads in table order.
func All() []Workload {
	out := make([]Workload, len(table))
	copy(out, table)
	return out
}

// ByName returns a workload by its xWy name (or the Figure 5(b) name).
func ByName(name string) (Workload, bool) {
	for _, w := range table {
		if w.Name == name {
			return w, true
		}
	}
	if name == BzipTwolf8.Name {
		return BzipTwolf8, true
	}
	return Workload{}, false
}

// OfSize returns the five workloads with the given thread count.
func OfSize(threads int) []Workload {
	var out []Workload
	for _, w := range table {
		if len(w.Letters) == threads {
			out = append(out, w)
		}
	}
	return out
}

// Sizes returns the distinct workload sizes in ascending order.
func Sizes() []int { return []int{2, 4, 6, 8} }

// Threads returns the number of hardware threads the workload needs.
func (w Workload) Threads() int { return len(w.Letters) }

// Cores returns the number of 2-context SMT cores the workload runs on
// (the paper's "each workload size x is simulated on x/2 cores").
func (w Workload) Cores() int { return (len(w.Letters) + 1) / 2 }

// Profiles resolves the letters into benchmark profiles, one per thread.
func (w Workload) Profiles() ([]synth.Profile, error) {
	out := make([]synth.Profile, 0, len(w.Letters))
	for i := 0; i < len(w.Letters); i++ {
		p, ok := synth.ByLetter(w.Letters[i])
		if !ok {
			return nil, fmt.Errorf("workload %s: unknown benchmark letter %q", w.Name, w.Letters[i])
		}
		out = append(out, p)
	}
	return out, nil
}

// Describe renders "name: bench0+bench1+..." for reports.
func (w Workload) Describe() string {
	s := w.Name + ":"
	for i := 0; i < len(w.Letters); i++ {
		p, ok := synth.ByLetter(w.Letters[i])
		name := string(w.Letters[i])
		if ok {
			name = p.Name
		}
		if i > 0 {
			s += "+"
		} else {
			s += " "
		}
		s += name
	}
	return s
}
