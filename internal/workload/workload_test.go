package workload

import (
	"strings"
	"testing"
)

func TestTableMatchesPaperFigure1(t *testing.T) {
	// Spot-check entries transcribed from the paper.
	cases := map[string]string{
		"2W1": "bj", "2W3": "da", "2W5": "rp",
		"4W2": "lnpe", "4W4": "gbmf",
		"6W3": "dlswra", "6W5": "hlermd",
		"8W1": "dlbgijcf", "8W3": "mnrqijeh", "8W5": "qbckeaot",
	}
	for name, letters := range cases {
		w, ok := ByName(name)
		if !ok {
			t.Errorf("%s missing", name)
			continue
		}
		if w.Letters != letters {
			t.Errorf("%s letters %q, want %q", name, w.Letters, letters)
		}
	}
}

func TestAllShape(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("workload count = %d, want 20", len(all))
	}
	for _, size := range Sizes() {
		ws := OfSize(size)
		if len(ws) != 5 {
			t.Errorf("size %d has %d workloads, want 5", size, len(ws))
		}
		for _, w := range ws {
			if w.Threads() != size {
				t.Errorf("%s threads %d, want %d", w.Name, w.Threads(), size)
			}
			if w.Cores() != size/2 {
				t.Errorf("%s cores %d, want %d", w.Name, w.Cores(), size/2)
			}
		}
	}
}

func TestProfilesResolve(t *testing.T) {
	for _, w := range append(All(), BzipTwolf8) {
		ps, err := w.Profiles()
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if len(ps) != w.Threads() {
			t.Errorf("%s resolved %d profiles for %d threads", w.Name, len(ps), w.Threads())
		}
	}
}

func TestBzipTwolfNeverShareCore(t *testing.T) {
	w := BzipTwolf8
	for c := 0; c < w.Cores(); c++ {
		a, b := w.Letters[2*c], w.Letters[2*c+1]
		if a != b {
			t.Errorf("core %d mixes %c and %c; the paper keeps the applications apart", c, a, b)
		}
	}
	// Both applications must actually appear.
	if !strings.Contains(w.Letters, "k") || !strings.Contains(w.Letters, "l") {
		t.Error("workload must contain both bzip2 (k) and twolf (l)")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("9W9"); ok {
		t.Fatal("phantom workload")
	}
}

func TestDescribe(t *testing.T) {
	w, _ := ByName("2W3")
	d := w.Describe()
	if !strings.Contains(d, "mcf") || !strings.Contains(d, "gzip") {
		t.Fatalf("describe(2W3) = %q, want mcf+gzip", d)
	}
}
