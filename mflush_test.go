package mflush

import (
	"strings"
	"testing"
)

func TestFacadeWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 20 {
		t.Fatalf("workload count = %d", got)
	}
	w, ok := WorkloadByName("2W3")
	if !ok || !strings.Contains(w.Describe(), "mcf") {
		t.Fatalf("2W3 = %q, %t", w.Describe(), ok)
	}
	if got := len(WorkloadsOfSize(6)); got != 5 {
		t.Fatalf("6-thread workloads = %d", got)
	}
	if got := len(BenchmarkProfiles()); got != 26 {
		t.Fatalf("profiles = %d", got)
	}
}

func TestFacadePolicySpecs(t *testing.T) {
	cases := map[string]PolicySpec{
		"ICOUNT":    ICOUNT,
		"FLUSH-NS":  FlushNS,
		"MFLUSH":    MFLUSH,
		"FLUSH-S70": FlushS(70),
		"STALL-S40": StallS(40),
		"MFLUSH-H3": MFLUSHHistory(3),
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("spec = %q, want %q", got, want)
		}
	}
}

func TestFacadeConfigAndEnvironment(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.Cores != 4 || cfg.Core.ThreadsPerCore != 2 {
		t.Fatalf("config shape wrong: %+v", cfg)
	}
	env := OperationalEnvironment(4)
	if env.MT == 0 {
		t.Fatal("4-core MT should be positive")
	}
	if OperationalEnvironment(1).MT != 0 {
		t.Fatal("1-core MT should be zero")
	}
}

func TestFacadeRun(t *testing.T) {
	w, _ := WorkloadByName("2W1")
	res, err := Run(Options{Workload: w, Policy: MFLUSH, Warmup: 15000, Cycles: 15000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("no progress through the facade")
	}
	base, err := Run(Options{Workload: w, Policy: ICOUNT, Warmup: 15000, Cycles: 15000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Speedup math is exposed and consistent.
	if s := Speedup(res, base); s != res.IPC/base.IPC-1 {
		t.Fatalf("speedup = %v", s)
	}
}
