// Contention: reproduce the paper's Figure 4 phenomenon — the L2 *hit*
// time becomes slower and far more variable as more SMT cores share the
// banked L2 cache — by running the same benchmark pair on machines with
// one to four cores and printing the hit-time distribution.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"strings"

	mflush "repro"
)

func main() {
	fmt.Println("L2 hit time (cycles from load issue) vs number of SMT cores")
	fmt.Println("machine: paper Figure 1; policy: ICOUNT (does not alter the")
	fmt.Println("L2 access pattern); workloads: the paper's xW3 series")
	fmt.Println()

	for _, name := range []string{"2W3", "4W3", "6W3", "8W3"} {
		w, ok := mflush.WorkloadByName(name)
		if !ok {
			log.Fatalf("missing workload %s", name)
		}
		res, err := mflush.Run(mflush.Options{
			Workload: w, Policy: mflush.ICOUNT,
			Warmup: 150_000, Cycles: 100_000, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		h := res.HitLatency
		fmt.Printf("%d core(s): mean %.1f  p50 %d  p90 %d  max %d  (n=%d, 20-70cy: %.0f%%)\n",
			w.Cores(), h.Mean(), h.Percentile(0.5), h.Percentile(0.9),
			h.Max(), h.Count(), h.FracBetween(20, 70)*100)

		// A small text histogram, 10-cycle bins up to 100.
		buckets, _ := h.Buckets(10)
		for b := 2; b < 10 && b < len(buckets); b++ {
			frac := float64(buckets[b]) / float64(h.Count())
			bar := strings.Repeat("#", int(frac*50+0.5))
			fmt.Printf("   %3d-%3d %5.1f%% %s\n", b*10, b*10+9, frac*100, bar)
		}
		fmt.Println()
	}
	fmt.Println("the MFLUSH operational environment adapts to this variability:")
	for cores := 1; cores <= 4; cores++ {
		env := mflush.OperationalEnvironment(cores)
		fmt.Printf("  %d core(s): %s\n", cores, env)
	}
}
