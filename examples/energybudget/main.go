// Energy budget: reproduce the paper's Figure 11 trade-off on one
// workload — aggressive static FLUSH triggers buy throughput at the price
// of re-fetch energy; MFLUSH keeps the throughput while wasting less.
//
//	go run ./examples/energybudget [-workload 8W1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	mflush "repro"
)

func main() {
	name := flag.String("workload", "8W1", "workload to evaluate")
	flag.Parse()

	w, ok := mflush.WorkloadByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	fmt.Printf("energy/throughput trade-off on %s (%d cores)\n", w.Describe(), w.Cores())
	fmt.Println("wasted energy = accumulated Energy Consumption Factor of every")
	fmt.Println("instruction squashed by the FLUSH mechanism (paper Figure 10)")
	fmt.Println()

	specs := []mflush.PolicySpec{
		mflush.ICOUNT, mflush.FlushS(30), mflush.FlushS(100),
		mflush.MFLUSH, mflush.MFLUSHHistory(4),
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tIPC\tflushed insts\twasted energy\twaste per 1k commits")
	var s100, mf float64
	for _, spec := range specs {
		res, err := mflush.Run(mflush.Options{
			Workload: w, Policy: spec,
			Warmup: 150_000, Cycles: 100_000, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.0f\t%.1f\n",
			res.Policy, res.IPC, res.Energy.FlushedTotal(),
			res.WastedEnergy(), res.Energy.WastedPerCommit()*1000)
		switch res.Policy {
		case "FLUSH-S100":
			s100 = res.WastedEnergy()
		case "MFLUSH":
			mf = res.WastedEnergy()
		}
	}
	tw.Flush()
	if s100 > 0 {
		fmt.Printf("\nMFLUSH wastes %.0f%% less energy than FLUSH-S100 on this workload\n",
			(1-mf/s100)*100)
	}
}
