// Command client drives a running mflushd daemon end to end: it submits
// a campaign spec, follows the live SSE progress stream — rendering the
// per-job interval samples the daemon pushes as IPC sparklines — and
// fetches the aggregate once the campaign completes: the whole service
// round trip in a couple hundred lines of stdlib Go.
//
// Start a daemon, then run the client:
//
//	go run ./cmd/mflushd &
//	go run ./examples/client -addr http://127.0.0.1:8080
//	go run ./examples/client -addr http://127.0.0.1:8080 -spec sweep.json -format csv
//
// Run it twice: the second run returns the same aggregate with every job
// served from the daemon's content-addressed cache.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// submitResponse mirrors the daemon's 202 body (see API.md).
type submitResponse struct {
	ID        string `json:"id"`
	Jobs      int    `json:"jobs"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	ResultURL string `json:"result_url"`
}

// status mirrors the campaign status schema (see API.md).
type status struct {
	State     string `json:"state"`
	Jobs      int    `json:"jobs"`
	Completed int    `json:"completed"`
	Cached    int    `json:"cached"`
	Failed    int    `json:"failed"`
	Error     string `json:"error"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "mflushd base URL")
	specPath := flag.String("spec", "", "campaign spec file (default: a small built-in demo sweep)")
	format := flag.String("format", "table", "result format: json, csv, table or rows")
	flag.Parse()
	if err := run(*addr, *specPath, *format); err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
}

func run(addr, specPath, format string) error {
	// The demo sweep asks for interval samples (one per 2000 measured
	// cycles), so the daemon streams each job's live time series.
	spec := `{"workloads":["2W1","2W3"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":20000,"warmup":5000,"interval":2000}`
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		spec = string(data)
	}

	// 0. If the daemon coordinates a worker fleet (-cluster), say so —
	// the campaign's jobs will shard across it. The liveness detail
	// (lifetime jobs, observed simulation rate) rides on each worker's
	// lease heartbeats; the daemon just mirrors the latest report.
	if fleet, ok := fetchFleet(addr); ok {
		total := 0
		for _, w := range fleet.Workers {
			total += w.Capacity
		}
		fmt.Printf("fleet: %d workers, total capacity %d\n", len(fleet.Workers), total)
		for _, w := range fleet.Workers {
			line := fmt.Sprintf("  %-12s capacity %d, %d jobs done", w.Name, w.Capacity, w.JobsDone)
			if w.CyclesPerSec > 0 {
				line += fmt.Sprintf(", %.0f cycles/s", w.CyclesPerSec)
			}
			fmt.Println(line)
		}
	}

	// 1. Submit the campaign.
	resp, err := http.Post(addr+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return decodeError(resp)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	fmt.Printf("campaign %s accepted: %d jobs\n", sub.ID, sub.Jobs)

	// 2. Follow the SSE stream until the campaign settles, collecting
	// each job's live interval-IPC series along the way.
	final, series, err := follow(addr + sub.EventsURL)
	if err != nil {
		return err
	}
	if final.State != "done" {
		return fmt.Errorf("campaign ended %s: %s", final.State, final.Error)
	}
	fmt.Printf("done: %d completed (%d cache hits), %d failed\n",
		final.Completed, final.Cached, final.Failed)

	// 3. Sparkline of IPC over each run that streamed samples (jobs
	// served from the cache finish without live samples).
	if len(series.order) > 0 {
		fmt.Println("live interval IPC:")
		for _, job := range series.order {
			fmt.Printf("  %-28s %s\n", job, sparkline(series.byJob[job]))
		}
	}

	// 4. Fetch the aggregate.
	res, err := http.Get(addr + sub.ResultURL + "?format=" + format)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	return sc.Err()
}

// sampleSeries accumulates each job's live interval-IPC points in the
// order jobs first streamed.
type sampleSeries struct {
	byJob map[string][]float64
	order []string
}

func (s *sampleSeries) add(job string, ipc float64) {
	if s.byJob == nil {
		s.byJob = make(map[string][]float64)
	}
	if _, seen := s.byJob[job]; !seen {
		s.order = append(s.order, job)
	}
	s.byJob[job] = append(s.byJob[job], ipc)
}

// sparkBlocks are the eight block glyphs a sparkline quantises into.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values scaled to the series' own min..max — the
// shape of the run, one glyph per interval sample.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
		}
		out[i] = sparkBlocks[idx]
	}
	return fmt.Sprintf("%s  (%.3f..%.3f)", string(out), lo, hi)
}

// follow consumes the campaign's event stream, echoing progress,
// collecting live samples, and returning the terminal status.
func follow(url string) (status, sampleSeries, error) {
	var series sampleSeries
	resp, err := http.Get(url)
	if err != nil {
		return status{}, series, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return status{}, series, decodeError(resp)
	}
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p struct {
					Job    string `json:"job"`
					Cached bool   `json:"cached"`
					Totals status `json:"totals"`
				}
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					return status{}, series, err
				}
				note := ""
				if p.Cached {
					note = " (cached)"
				}
				fmt.Printf("  [%d/%d] %s%s\n", p.Totals.Completed+p.Totals.Failed, p.Totals.Jobs, p.Job, note)
			case "sample":
				var ev struct {
					Job    string `json:"job"`
					Sample struct {
						IntervalIPC float64 `json:"interval_ipc"`
					} `json:"sample"`
				}
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return status{}, series, err
				}
				series.add(ev.Job, ev.Sample.IntervalIPC)
			case "status": // initial snapshot; nothing to print
			default: // terminal: done, failed or canceled
				var st status
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return status{}, series, err
				}
				return st, series, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return status{}, series, err
	}
	return status{}, series, fmt.Errorf("event stream ended without a terminal event")
}

// fleet mirrors the GET /v1/workers body (see API.md).
type fleet struct {
	Workers []struct {
		ID           string  `json:"id"`
		Name         string  `json:"name"`
		Capacity     int     `json:"capacity"`
		JobsDone     uint64  `json:"jobs_done"`
		CyclesPerSec float64 `json:"cycles_per_sec"`
	} `json:"workers"`
	Pending int `json:"pending"`
}

// fetchFleet asks the daemon for its worker fleet; ok is false when the
// daemon is not in cluster mode (404) or the fleet is empty.
func fetchFleet(addr string) (fleet, bool) {
	resp, err := http.Get(addr + "/v1/workers")
	if err != nil {
		return fleet{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet{}, false
	}
	var f fleet
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil || len(f.Workers) == 0 {
		return fleet{}, false
	}
	return f, true
}

// decodeError surfaces the daemon's {"error": ...} envelope.
func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, body.Error)
	}
	return fmt.Errorf("unexpected response %s", resp.Status)
}
