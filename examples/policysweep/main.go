// Policy sweep: reproduce the paper's Detection Moment analysis (Figure 5)
// on any workload — sweep the speculative FLUSH trigger, and compare with
// non-speculative FLUSH, STALL and MFLUSH.
//
//	go run ./examples/policysweep [-workload 8W3] [-cycles 100000]
//
// The point of the experiment: on a CMP with a shared L2 there is no
// single trigger value that works for every workload, which is what
// motivates MFLUSH's adaptive Barrier.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	mflush "repro"
)

func main() {
	name := flag.String("workload", "8W3", "workload to sweep")
	cycles := flag.Uint64("cycles", 100_000, "measured cycles")
	warmup := flag.Uint64("warmup", 150_000, "warm-up cycles")
	flag.Parse()

	w, ok := mflush.WorkloadByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	fmt.Printf("Detection Moment sweep on %s (%d cores)\n\n", w.Describe(), w.Cores())

	specs := []mflush.PolicySpec{mflush.ICOUNT}
	for _, trig := range []int{30, 50, 70, 90, 110, 130, 150} {
		specs = append(specs, mflush.FlushS(trig))
	}
	specs = append(specs, mflush.FlushNS, mflush.StallS(30), mflush.MFLUSH)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tIPC\tflushes\twasted energy")
	best, bestIPC := "", 0.0
	for _, spec := range specs {
		res, err := mflush.Run(mflush.Options{
			Workload: w, Policy: spec,
			Warmup: *warmup, Cycles: *cycles, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.0f\n",
			res.Policy, res.IPC, res.Flushes, res.WastedEnergy())
		if res.IPC > bestIPC {
			bestIPC, best = res.IPC, res.Policy
		}
	}
	tw.Flush()
	fmt.Printf("\nbest policy for %s: %s (%.3f IPC)\n", w.Name, best, bestIPC)
}
