// Quickstart: run the paper's most extreme workload (2W3 = mcf + gzip, a
// memory-bound thread co-scheduled with a compute-bound one) on a single
// SMT core under ICOUNT and under MFLUSH, and compare throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mflush "repro"
)

func main() {
	w, ok := mflush.WorkloadByName("2W3")
	if !ok {
		log.Fatal("workload 2W3 missing")
	}
	fmt.Printf("workload: %s\n\n", w.Describe())

	var results []*mflush.Result
	for _, policy := range []mflush.PolicySpec{mflush.ICOUNT, mflush.MFLUSH} {
		res, err := mflush.Run(mflush.Options{
			Workload: w,
			Policy:   policy,
			Warmup:   150_000,
			Cycles:   100_000,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("%-8s system IPC %.3f  (per thread: mcf %d, gzip %d commits; %d flushes)\n",
			res.Policy, res.IPC, res.Committed[0], res.Committed[1], res.Flushes)
	}

	fmt.Printf("\nMFLUSH speedup over ICOUNT: %+.1f%%\n",
		mflush.Speedup(results[1], results[0])*100)
	fmt.Println("\nwhy: under ICOUNT, mcf's loads miss the L2 and its dependent")
	fmt.Println("instructions clog the shared issue queues; MFLUSH detects the")
	fmt.Println("long-latency loads, flushes mcf and gives gzip the machine.")
}
